(* Tests for the CFG substrate: lowering, dominance, natural loops, and
   the program call graph. *)

open Scalana_mlang
open Scalana_cfg
open Testutil

let func_of prog name = Ast.find_func prog name

let test_straightline () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"s.mmp" ~name:"s" () in
  Builder.func b "main" (fun () ->
      [
        Builder.comp b ~flops:(i 1) ~mem:(i 1) ();
        Builder.comp b ~flops:(i 2) ~mem:(i 2) ();
        Builder.barrier b;
      ]);
    Builder.program b
  in
  let cfg = Cfg.of_func (func_of prog "main") in
  check_int "one block" 1 (Cfg.n_blocks cfg);
  check_int "stmts in entry" 3 (List.length (Cfg.block cfg cfg.entry).stmts);
  match (Cfg.block cfg cfg.entry).term with
  | Cfg.Ret -> ()
  | Cfg.Jump _ | Cfg.Cond _ -> Alcotest.fail "entry should return"

let test_loop_shape () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"l.mmp" ~name:"l" () in
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~var:"i" ~count:(i 10) (fun () ->
            [ Builder.comp b ~flops:(i 1) ~mem:(i 1) () ]);
      ]);
    Builder.program b
  in
  let cfg = Cfg.of_func (func_of prog "main") in
  (* entry, header, body, latch, exit *)
  check_int "blocks" 5 (Cfg.n_blocks cfg);
  check_int "edges" 5 (Cfg.edge_count cfg);
  let headers =
    Array.to_list cfg.blocks
    |> List.filter (fun (blk : Cfg.block) ->
           match blk.origin with Cfg.Loop_header _ -> true | _ -> false)
  in
  check_int "one header" 1 (List.length headers)

let test_branch_diamond () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"b.mmp" ~name:"b" () in
  Builder.func b "main" (fun () ->
      [
        Builder.branch b
          ~cond:(rank = i 0)
          ~else_:(fun () -> [ Builder.comp b ~flops:(i 2) ~mem:(i 2) () ])
          (fun () -> [ Builder.comp b ~flops:(i 1) ~mem:(i 1) () ]);
      ]);
    Builder.program b
  in
  let cfg = Cfg.of_func (func_of prog "main") in
  (* entry, cond, then, else, join *)
  check_int "blocks" 5 (Cfg.n_blocks cfg);
  let dom = Dominance.compute cfg in
  let cond_block =
    Array.to_list cfg.blocks
    |> List.find (fun (blk : Cfg.block) ->
           match blk.origin with Cfg.Branch_cond _ -> true | _ -> false)
  in
  (match cond_block.term with
  | Cfg.Cond { on_true; on_false; _ } ->
      check_bool "cond doms then" true
        (Dominance.dominates dom cond_block.id on_true);
      check_bool "cond doms else" true
        (Dominance.dominates dom cond_block.id on_false);
      check_bool "then !doms exit" false
        (Dominance.dominates dom on_true cfg.exit_)
  | Cfg.Jump _ | Cfg.Ret -> Alcotest.fail "expected Cond terminator");
  check_bool "entry doms exit" true
    (Dominance.dominates dom cfg.entry cfg.exit_)

let test_dominance_properties () =
  let prog = Testutil.fig3_program () in
  List.iter
    (fun (f : Ast.func) ->
      let cfg = Cfg.of_func f in
      let dom = Dominance.compute cfg in
      List.iter
        (fun id ->
          check_bool "entry dominates" true
            (Dominance.dominates dom cfg.entry id);
          match Dominance.idom dom id with
          | None -> check_int "only entry has no idom" cfg.entry id
          | Some idom ->
              check_bool "idom dominates" true (Dominance.dominates dom idom id);
              check_bool "idom is not self" true (idom <> id))
        (Cfg.reverse_postorder cfg))
    prog.funcs

let test_natural_loops_match_ast () =
  List.iter
    (fun name ->
      let entry = Scalana_apps.Registry.find name in
      let prog = entry.make () in
      List.iter
        (fun (f : Ast.func) ->
          match Scalana_psg.Intra.crosscheck f with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: %s" name msg)
        prog.funcs)
    Scalana_apps.Registry.names

let test_loop_depths () =
  let prog = Testutil.fig3_program () in
  let cfg = Cfg.of_func (func_of prog "main") in
  let loops = Loops.compute cfg in
  check_int "loops" 3 (Loops.count loops);
  check_int "max depth" 2 (Loops.max_depth loops);
  List.iter
    (fun (l : Loops.loop) ->
      check_bool "header in body" true (List.mem l.header l.body);
      check_bool "latch in body" true (List.mem l.latch l.body))
    (Loops.loops loops)

let test_rpo_starts_at_entry () =
  let prog = Testutil.fig3_program () in
  let cfg = Cfg.of_func (func_of prog "main") in
  match Cfg.reverse_postorder cfg with
  | first :: _ -> check_int "entry first" cfg.entry first
  | [] -> Alcotest.fail "empty RPO"

(* --- dataflow --- *)

module BoolLattice = struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
end

module BoolSolver = Dataflow.Solver (BoolLattice)

let diamond_program () =
  let open Expr.Infix in
  let b = Builder.create ~file:"df.mmp" ~name:"df" () in
  Builder.func b "main" (fun () ->
      [
        Builder.comp b ~flops:(i 1) ~mem:(i 1) ();
        Builder.branch b
          ~cond:(rank = i 0)
          ~else_:(fun () -> [ Builder.comp b ~flops:(i 2) ~mem:(i 2) () ])
          (fun () -> [ Builder.comp b ~flops:(i 3) ~mem:(i 3) () ]);
        Builder.barrier b;
      ]);
  Builder.program b

let test_solver_reachability () =
  (* identity transfer with a [true] boundary fact: forward marks every
     block reachable from the entry, backward every block reaching the
     exit — on a diamond that is all of them, in both directions *)
  let cfg = Cfg.of_func (func_of (diamond_program ()) "main") in
  let fwd =
    BoolSolver.solve ~direction:Dataflow.Forward ~entry_fact:true
      ~transfer:(fun _ fact -> fact)
      cfg
  in
  Array.iteri
    (fun id reached -> check_bool (Printf.sprintf "fwd block %d" id) true reached)
    fwd.BoolSolver.output;
  let bwd =
    BoolSolver.solve ~direction:Dataflow.Backward ~entry_fact:true
      ~transfer:(fun _ fact -> fact)
      cfg
  in
  Array.iteri
    (fun id reaches -> check_bool (Printf.sprintf "bwd block %d" id) true reaches)
    bwd.BoolSolver.output

let test_solver_fixpoint () =
  (* the returned solution really is a fixed point: re-applying the join
     and the transfer changes nothing, and every block was popped at
     least once (the iteration count proves the worklist visited it) *)
  let cfg = Cfg.of_func (func_of (diamond_program ()) "main") in
  let transfer _ fact = fact in
  let r =
    BoolSolver.solve ~direction:Dataflow.Forward ~entry_fact:true ~transfer cfg
  in
  check_bool "at least one pop per block" true
    (r.BoolSolver.iterations >= Cfg.n_blocks cfg);
  let preds = Cfg.predecessors cfg in
  Array.iteri
    (fun id out ->
      let in_fact =
        List.fold_left
          (fun acc p -> acc || r.BoolSolver.output.(p))
          (id = cfg.Cfg.entry) preds.(id)
      in
      check_bool (Printf.sprintf "input %d stable" id)
        r.BoolSolver.input.(id) in_fact;
      check_bool (Printf.sprintf "output %d stable" id) out (transfer id in_fact))
    r.BoolSolver.output

(* entry -> {a, b}; a <-> b; a -> exit.  The cycle {a, b} is entered at
   two blocks, so neither edge is a back edge to a dominator: the graph
   is irreducible.  [Cfg.of_func] can never produce this shape (the AST
   is structured), so it is built by hand. *)
let irreducible_cfg () =
  let blk id term = { Cfg.id; stmts = []; term; origin = Cfg.Plain } in
  {
    Cfg.fname = "irreducible";
    entry = 0;
    exit_ = 3;
    blocks =
      [|
        blk 0 (Cfg.Cond { cond = Expr.Rank; on_true = 1; on_false = 2 });
        blk 1 (Cfg.Cond { cond = Expr.Rank; on_true = 2; on_false = 3 });
        blk 2 (Cfg.Jump 1);
        blk 3 Cfg.Ret;
      |];
  }

let test_irreducible_loops () =
  let cfg = irreducible_cfg () in
  let dom = Dominance.compute cfg in
  check_bool "entry dominates all" true
    (List.for_all
       (Dominance.dominates dom cfg.Cfg.entry)
       (Cfg.reverse_postorder cfg));
  check_bool "a does not dominate b" false (Dominance.dominates dom 1 2);
  check_bool "b does not dominate a" false (Dominance.dominates dom 2 1);
  (* the two-entry cycle must not be reported as a natural loop *)
  let loops = Loops.compute cfg in
  check_int "no natural loops" 0 (Loops.count loops);
  check_int "max depth" 0 (Loops.max_depth loops);
  (* and the dataflow solver still terminates on the irreducible cycle *)
  let r =
    BoolSolver.solve ~direction:Dataflow.Forward ~entry_fact:true
      ~transfer:(fun _ f -> f)
      cfg
  in
  Array.iteri
    (fun id reached ->
      check_bool (Printf.sprintf "block %d reached" id) true reached)
    r.BoolSolver.output;
  check_bool "terminates in bounded pops" true
    (r.BoolSolver.iterations <= 4 * Cfg.n_blocks cfg)

let test_defuse_primitives () =
  let isend =
    Ast.Isend { dest = Expr.Int 0; tag = Expr.Int 0; bytes = Expr.Int 8; req = "r" }
  in
  check_bool "isend defs its request" true
    (Defuse.mpi_defs isend = [ Defuse.Req "r" ]);
  check_bool "isend uses no request" true
    (List.for_all
       (function Defuse.Req _ -> false | Defuse.Var _ -> true)
       (Defuse.mpi_uses isend));
  check_bool "wait uses its request" true
    (Defuse.mpi_uses (Ast.Wait { req = "r" }) = [ Defuse.Req "r" ]);
  check_bool "waitall uses all requests" true
    (Defuse.mpi_uses (Ast.Waitall { reqs = [ "a"; "b" ] })
    = [ Defuse.Req "a"; Defuse.Req "b" ]);
  check_int "sym ordering is total" 0
    (Defuse.compare_sym (Defuse.Var "x") (Defuse.Var "x"))

(* let n = 4; loop j < n { comp(j) }; isend r0; wait r0; isend r1 *)
let chains_fixture () =
  let open Expr.Infix in
  let b = Builder.create ~file:"ch.mmp" ~name:"ch" () in
  Builder.func b "main" (fun () ->
      [
        Builder.let_ b "n" (i 4);
        Builder.loop b ~var:"j" ~count:(v "n") (fun () ->
            [ Builder.comp b ~flops:(v "j") ~mem:(i 1) () ]);
        Builder.isend b ~dest:(i 0) ~bytes:(i 8) ~req:"r0" ();
        Builder.wait b ~req:"r0";
        Builder.isend b ~dest:(i 0) ~bytes:(i 8) ~req:"r1" ();
      ]);
  Ast.find_func (Builder.program b) "main"

let test_reaching_chains () =
  let f = chains_fixture () in
  match f.Ast.fbody with
  | [ slet; sloop; sisend; swait; sisend2 ] ->
      let scomp =
        match sloop.Ast.node with
        | Ast.Loop l -> List.hd l.body
        | _ -> Alcotest.fail "expected loop"
      in
      let ch = Defuse.Chains.of_func f in
      check_int "defs: n, j, r0, r1" 4 (Defuse.Chains.n_defs ch);
      check_int "uses: count, flops, wait" 3 (Defuse.Chains.n_uses ch);
      check_bool "loop count use reaches the let" true
        (Defuse.Chains.defs_reaching ch ~loc:sloop.Ast.loc (Defuse.Var "n")
        = [ slet.Ast.loc ]);
      check_bool "comp use of j reaches the loop header" true
        (Defuse.Chains.defs_reaching ch ~loc:scomp.Ast.loc (Defuse.Var "j")
        = [ sloop.Ast.loc ]);
      check_bool "wait reaches its isend" true
        (Defuse.Chains.defs_reaching ch ~loc:swait.Ast.loc (Defuse.Req "r0")
        = [ sisend.Ast.loc ]);
      check_bool "r1 never waited" true
        (Defuse.Chains.unused_defs ch
        = [ (Defuse.Req "r1", sisend2.Ast.loc) ])
  | _ -> Alcotest.fail "unexpected fixture shape"

let test_live_variables () =
  let f = chains_fixture () in
  let cfg = Cfg.of_func f in
  let lv = Defuse.Live.compute cfg in
  let out = Defuse.Live.live_out lv cfg.entry in
  check_bool "n live out of the entry block" true
    (List.mem (Defuse.Var "n") out);
  check_bool "j dead before its loop" true
    (not (List.mem (Defuse.Var "j") out));
  check_bool "nothing live at the exit" true
    (Defuse.Live.live_out lv cfg.exit_ = [])

(* --- call graph --- *)

let test_callgraph_edges () =
  let prog = Testutil.recursion_program () in
  let cg = Callgraph.build prog in
  let main_callees =
    Callgraph.callees cg "main"
    |> List.map (fun (e : Callgraph.edge) -> e.callee)
  in
  Alcotest.(check (slist string compare))
    "main callees" [ "alpha"; "beta"; "walk" ] main_callees;
  let kinds =
    Callgraph.callees cg "main"
    |> List.filter (fun (e : Callgraph.edge) -> e.kind = Callgraph.Indirect)
    |> List.map (fun (e : Callgraph.edge) -> e.callee)
  in
  Alcotest.(check (slist string compare)) "indirect" [ "alpha"; "beta" ] kinds

let test_recursion_detection () =
  let prog = Testutil.recursion_program () in
  let cg = Callgraph.build prog in
  check_bool "walk recursive" true (Callgraph.is_recursive cg "walk");
  check_bool "main not recursive" false (Callgraph.is_recursive cg "main");
  check_bool "alpha not recursive" false (Callgraph.is_recursive cg "alpha")

let test_mutual_recursion () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"m.mmp" ~name:"m" () in
  Builder.func b "ping" (fun () -> [ Builder.call b "pong" ]);
  Builder.func b "pong" (fun () -> [ Builder.call b "ping" ]);
  Builder.func b "main" (fun () ->
      [ Builder.call b "ping"; Builder.comp b ~flops:(i 1) ~mem:(i 1) () ]);
    Builder.program b
  in
  let cg = Callgraph.build prog in
  check_bool "ping recursive" true (Callgraph.is_recursive cg "ping");
  check_bool "pong recursive" true (Callgraph.is_recursive cg "pong");
  check_bool "same scc" true (Callgraph.in_same_scc cg "ping" "pong");
  check_bool "main not in scc" false (Callgraph.in_same_scc cg "main" "ping")

let test_reachable_and_topo () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"r.mmp" ~name:"r" () in
  Builder.func b "used" (fun () ->
      [ Builder.comp b ~flops:(i 1) ~mem:(i 1) () ]);
  Builder.func b "dead" (fun () ->
      [ Builder.comp b ~flops:(i 1) ~mem:(i 1) () ]);
  Builder.func b "main" (fun () -> [ Builder.call b "used" ]);
    Builder.program b
  in
  let cg = Callgraph.build prog in
  Alcotest.(check (slist string compare))
    "reachable" [ "main"; "used" ] (Callgraph.reachable cg);
  let order = Callgraph.topo_order cg in
  let pos x =
    let rec go i = function
      | [] -> -1
      | y :: rest -> if String.equal x y then i else go (i + 1) rest
    in
    go 0 order
  in
  check_bool "used before main" true (pos "used" < pos "main")

let test_callgraph_scc_count () =
  let prog = Testutil.recursion_program () in
  let cg = Callgraph.build prog in
  check_int "sccs" 4 (Callgraph.scc_count cg)

let () =
  Alcotest.run "cfg"
    [
      ( "lowering",
        [
          Alcotest.test_case "straight line" `Quick test_straightline;
          Alcotest.test_case "loop shape" `Quick test_loop_shape;
          Alcotest.test_case "branch diamond" `Quick test_branch_diamond;
          Alcotest.test_case "rpo starts at entry" `Quick
            test_rpo_starts_at_entry;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "properties on fig3" `Quick
            test_dominance_properties;
        ] );
      ( "loops",
        [
          Alcotest.test_case "fig3 loop depths" `Quick test_loop_depths;
          Alcotest.test_case "natural loops match AST (all apps)" `Quick
            test_natural_loops_match_ast;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "solver reachability" `Quick
            test_solver_reachability;
          Alcotest.test_case "solver fixpoint" `Quick test_solver_fixpoint;
          Alcotest.test_case "irreducible cycle" `Quick test_irreducible_loops;
          Alcotest.test_case "def/use primitives" `Quick test_defuse_primitives;
          Alcotest.test_case "reaching chains" `Quick test_reaching_chains;
          Alcotest.test_case "live variables" `Quick test_live_variables;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "edges" `Quick test_callgraph_edges;
          Alcotest.test_case "self recursion" `Quick test_recursion_detection;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "reachable and topo" `Quick
            test_reachable_and_topo;
          Alcotest.test_case "scc count" `Quick test_callgraph_scc_count;
        ] );
    ]
