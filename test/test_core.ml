(* Tests for the core facade: static analysis step, profiled runs,
   pipeline, artifacts, experiments, viewer and the Fig. 2 delay
   injection scenario. *)

open Scalana_mlang
open Scalana_runtime
open Testutil

let test_static_analyze () =
  let prog = fig3_program () in
  let static = Scalana.Static.analyze prog in
  check_bool "psg nonempty" true
    (Scalana_psg.Psg.n_vertices (Scalana.Static.psg static) > 0);
  check_bool "stats consistent" true
    (static.stats.Scalana_psg.Stats.vbc >= static.stats.Scalana_psg.Stats.vac)

let test_static_rejects_invalid () =
  let b = Builder.create ~file:"bad.mmp" ~name:"bad" () in
  Builder.func b "main" (fun () -> [ Builder.call b "ghost" ]);
  let prog = Builder.program b in
  match Scalana.Static.analyze prog with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_static_overhead_measurable () =
  let prog = (Scalana_apps.Registry.find "cg").make () in
  let pct = Scalana.Static.static_overhead ~repeat:1 prog in
  check_bool "positive" true (pct > 0.0);
  check_bool "below base compile" true (pct < 100.0)

let test_prof_run_and_overhead () =
  let entry = Scalana_apps.Registry.find "cg" in
  let static = Scalana.Static.analyze (entry.make ()) in
  let run =
    Scalana.Prof.run ~cost:entry.cost ~measure_overhead:true static ~nprocs:8 ()
  in
  check_int "nprocs" 8 run.nprocs;
  (match Scalana.Prof.overhead_percent run with
  | Some pct ->
      check_bool "overhead in a sane band" true (pct > 0.0 && pct < 25.0)
  | None -> Alcotest.fail "overhead requested but missing");
  check_bool "samples collected" true (run.data.total_samples > 0)

let test_prof_refines_indirect () =
  let static = Scalana.Static.analyze (recursion_program ()) in
  let before = Scalana_psg.Psg.n_vertices (Scalana.Static.psg static) in
  let _run = Scalana.Prof.run static ~nprocs:4 () in
  let after = Scalana_psg.Psg.n_vertices (Scalana.Static.psg static) in
  check_bool "PSG refined with runtime targets" true (after > before)

let test_pipeline_end_to_end () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8; 16 ] (entry.make ())
  in
  check_int "three runs" 3 (List.length pipe.runs);
  check_bool "detect cost measured" true (pipe.detect_seconds >= 0.0);
  check_bool "report nonempty" true (String.length pipe.report > 100);
  check_bool "root causes found" true (pipe.analysis.causes <> [])

let test_fig2_injected_delay () =
  (* the motivating example: a delay planted in one process of NPB-CG is
     traced back to that rank's computation *)
  let entry = Scalana_apps.Registry.find "cg" in
  let prog = entry.make () in
  (* find the spmv comp's source line to target the injection *)
  let spmv_loc = ref None in
  Ast.iter_program
    (fun s ->
      match s.Ast.node with
      | Ast.Comp { label = Some "spmv"; _ } -> spmv_loc := Some s.Ast.loc
      | _ -> ())
    prog;
  let loc = Option.get !spmv_loc in
  let inject = Inject.create [ Inject.delay ~ranks:[ 4 ] ~loc 1.0 ] in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~inject ~scales:[ 8 ] prog
  in
  (* the abnormal detector flags the injected rank at the spmv vertex *)
  let hit =
    List.exists
      (fun (f : Scalana_detect.Abnormal.finding) ->
        let v = Scalana_psg.Psg.vertex (Scalana.Static.psg pipe.static) f.vertex in
        Loc.equal v.Scalana_psg.Vertex.loc loc && List.mem 4 f.ranks)
      pipe.analysis.abnormal
  in
  check_bool "injected rank flagged at spmv" true hit;
  (* and a root-cause path terminates on rank 4 *)
  check_bool "a cause blames rank 4" true
    (List.exists
       (fun (c : Scalana_detect.Rootcause.cause) ->
         List.mem 4 c.culprit_ranks)
       pipe.analysis.causes)


let test_pipeline_accessors () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8 ] (entry.make ())
  in
  let locs = Scalana.Pipeline.root_cause_locs pipe in
  let labels = Scalana.Pipeline.root_cause_labels pipe in
  check_int "locs match labels" (List.length locs) (List.length labels);
  List.iter
    (fun loc ->
      check_string "locs point into the program" "zeusmp.mmp" (Loc.file loc))
    locs;
  (* the columnar stores are live and accounted: every scale holds at
     least one row of cells *)
  check_bool "ppg storage accounted" true
    (Scalana.Pipeline.ppg_storage_bytes pipe > 0)

let test_param_override () =
  (* runtime parameter overrides shrink the run proportionally *)
  let entry = Scalana_apps.Registry.find "ep" in
  let prog = entry.make () in
  let t_full = Scalana.Experiment.bare_elapsed prog ~nprocs:4 in
  let t_small =
    Scalana.Experiment.bare_elapsed ~params:[ ("m", 9_000_000_000) ] prog
      ~nprocs:4
  in
  check_bool "override shrinks the run" true
    (t_small < 0.5 *. t_full && t_small > 0.1 *. t_full)

let test_artifact_roundtrip () =
  let dir = Filename.temp_file "scalana" "" in
  Sys.remove dir;
  let entry = Scalana_apps.Registry.find "cg" in
  let static = Scalana.Static.analyze (entry.make ()) in
  Scalana.Artifact.save_static dir static;
  let run = Scalana.Prof.run ~cost:entry.cost static ~nprocs:4 () in
  Scalana.Artifact.save_run dir run;
  let run8 = Scalana.Prof.run ~cost:entry.cost static ~nprocs:8 () in
  Scalana.Artifact.save_run dir run8;
  let session = Scalana.Artifact.load_session dir in
  check_int "two runs" 2 (List.length session.runs);
  Alcotest.(check (list int))
    "sorted scales" [ 4; 8 ]
    (List.map fst session.runs);
  check_bool "program preserved" true
    (String.equal session.static.program.pname "npb-cg");
  (* detection works on the reloaded session *)
  let pipe = Scalana.Pipeline.detect session.static session.runs in
  check_bool "report renders" true (String.length pipe.report > 0)

let test_artifact_bad_magic () =
  let f = Filename.temp_file "scalana" ".static" in
  let oc = open_out f in
  output_string oc "NOTSCALANA";
  close_out oc;
  match (Scalana.Artifact.load_value f : Scalana.Static.t) with
  | _ -> Alcotest.fail "expected failure"
  | exception Scalana.Artifact.Error (Scalana.Artifact.Bad_magic _) -> ()

(* --- salvage properties of the v2 record stream --- *)

(* A small fixture: [k] appended records with distinct payloads, plus the
   byte offset of every record boundary (header included). *)
let stream_fixture k =
  let path = Filename.temp_file "scalana" ".prof" in
  let values = List.init k (fun i -> (i, String.make (20 + (i * 7)) 'x')) in
  List.iter (fun v -> Scalana.Artifact.append_value path v) values;
  let boundaries = ref [] in
  let pos = ref (String.length Scalana.Artifact.magic + 1) in
  List.iter
    (fun v ->
      boundaries := !pos :: !boundaries;
      pos := !pos + 8 + String.length (Marshal.to_string v []))
    values;
  boundaries := !pos :: !boundaries;
  (path, values, List.rev !boundaries)

let copy_file src dst =
  let ic = open_in_bin src in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

let is_prefix_of shorter longer =
  List.length shorter <= List.length longer
  && List.for_all2 (fun a b -> a = b)
       shorter
       (List.filteri (fun i _ -> i < List.length shorter) longer)

let test_artifact_truncate_every_boundary () =
  let path, values, boundaries = stream_fixture 5 in
  let tmp = Filename.temp_file "scalana" ".trunc" in
  (* cut exactly at each record boundary: a shorter but undamaged stream *)
  List.iteri
    (fun i b ->
      copy_file path tmp;
      Scalana_runtime.Faults.truncate_file tmp ~at_byte:b;
      let s : (int * string) Scalana.Artifact.salvage =
        Scalana.Artifact.read_stream tmp
      in
      check_int (Printf.sprintf "boundary %d: records" i) i
        (List.length s.values);
      check_bool
        (Printf.sprintf "boundary %d: undamaged" i)
        true (s.damage = None))
    boundaries;
  (* cut at every single byte offset: the intact prefix survives and the
     loss is reported as Truncated with the right record count *)
  let last = List.nth boundaries (List.length boundaries - 1) in
  for at_byte = 0 to last - 1 do
    if not (List.mem at_byte boundaries) then begin
    copy_file path tmp;
    Scalana_runtime.Faults.truncate_file tmp ~at_byte;
    let s : (int * string) Scalana.Artifact.salvage =
      Scalana.Artifact.read_stream tmp
    in
    let expect_records =
      List.length (List.filter (fun b -> b <= at_byte) (List.tl boundaries))
    in
    if not (is_prefix_of s.values values) then
      Alcotest.failf "cut@%d: salvage is not a prefix" at_byte;
    check_int (Printf.sprintf "cut@%d: records" at_byte) expect_records
      (List.length s.values);
    match s.damage with
    | Some (Scalana.Artifact.Truncated { records_ok; _ }) ->
        check_int (Printf.sprintf "cut@%d: records_ok" at_byte) expect_records
          records_ok
    | Some (Scalana.Artifact.Bad_magic _) when at_byte < 8 ->
        Alcotest.failf "cut@%d: magic prefix reported as foreign" at_byte
    | Some e ->
        Alcotest.failf "cut@%d: unexpected damage %s" at_byte
          (Scalana.Artifact.error_message e)
    | None -> Alcotest.failf "cut@%d: truncation not reported" at_byte
    end
  done

let test_artifact_bit_flip_salvage () =
  let path, values, boundaries = stream_fixture 4 in
  let tmp = Filename.temp_file "scalana" ".flip" in
  let size = List.nth boundaries (List.length boundaries - 1) in
  (* flip every byte in turn: salvage must return an exact prefix and
     always report the damage *)
  for at_byte = 0 to size - 1 do
    copy_file path tmp;
    Scalana_runtime.Faults.corrupt_byte tmp ~at_byte ~xor:0x40 ();
    let s : (int * string) Scalana.Artifact.salvage =
      Scalana.Artifact.read_stream tmp
    in
    if not (is_prefix_of s.values values) then
      Alcotest.failf "flip@%d: salvage is not a prefix" at_byte;
    (match s.damage with
    | Some _ -> ()
    | None -> Alcotest.failf "flip@%d: corruption not reported" at_byte);
    (* records before the flipped one always survive *)
    let intact_before =
      List.length
        (List.filter (fun b -> b <= at_byte) (List.tl boundaries))
      |> min (List.length values)
    in
    if at_byte >= List.hd boundaries then
      check_bool
        (Printf.sprintf "flip@%d: prefix survives" at_byte)
        true
        (List.length s.values >= min intact_before (List.length values))
  done;
  (* a payload flip specifically lands on the checksum, not a crash *)
  copy_file path tmp;
  Scalana_runtime.Faults.corrupt_byte tmp ~at_byte:(List.hd boundaries + 8)
    ~xor:0x01 ();
  let s : (int * string) Scalana.Artifact.salvage =
    Scalana.Artifact.read_stream tmp
  in
  match s.damage with
  | Some (Scalana.Artifact.Checksum_mismatch { record; _ }) ->
      check_int "flip hits record 0" 0 record
  | Some e -> Alcotest.failf "unexpected: %s" (Scalana.Artifact.error_message e)
  | None -> Alcotest.fail "payload flip undetected"

let test_artifact_decode_failure_surfaced () =
  (* a run file with valid magic and CRC but an undecodable payload must
     surface as a named issue, not vanish and not crash (satellite: the
     old loader dropped it silently) *)
  let dir = Filename.temp_file "scalana" "" in
  Sys.remove dir;
  let entry = Scalana_apps.Registry.find "cg" in
  let static = Scalana.Static.analyze (entry.make ()) in
  Scalana.Artifact.save_static dir static;
  let run = Scalana.Prof.run ~cost:entry.cost static ~nprocs:4 () in
  Scalana.Artifact.save_run dir run;
  (* hand-craft the damaged profile: garbage payload, correct checksum *)
  let bad = Scalana.Artifact.run_path dir 8 in
  let oc = open_out_bin bad in
  output_string oc Scalana.Artifact.magic;
  output_byte oc Scalana.Artifact.format_version;
  let payload = "certainly not marshalled data" in
  output_binary_int oc (String.length payload);
  output_binary_int oc (Scalana.Artifact.crc32 payload);
  output_string oc payload;
  close_out oc;
  let runs, issues = Scalana.Artifact.load_runs_salvage dir in
  Alcotest.(check (list int)) "good run kept" [ 4 ] (List.map fst runs);
  check_int "one issue" 1 (List.length issues);
  let issue = List.hd issues in
  (match issue.Scalana.Artifact.error with
  | Scalana.Artifact.Decode_failure { record = 0; _ } -> ()
  | e -> Alcotest.failf "expected decode failure, got %s"
           (Scalana.Artifact.error_message e));
  check_bool "warning names the file" true
    (try
       ignore
         (Str.search_forward
            (Str.regexp_string "run_0008.prof")
            (Scalana.Artifact.issue_message issue)
            0);
       true
     with Not_found -> false)

let test_artifact_append_last_wins () =
  let dir = Filename.temp_file "scalana" "" in
  Sys.remove dir;
  let entry = Scalana_apps.Registry.find "cg" in
  let static = Scalana.Static.analyze (entry.make ()) in
  Scalana.Artifact.save_static dir static;
  let r1 = Scalana.Prof.run ~cost:entry.cost static ~nprocs:4 () in
  Scalana.Artifact.save_run dir r1;
  let r2 = Scalana.Prof.run ~cost:entry.cost static ~nprocs:4 () in
  Scalana.Artifact.save_run dir r2;
  (* two records in one file; the newest intact one wins *)
  let s : Scalana.Prof.run Scalana.Artifact.salvage =
    Scalana.Artifact.read_stream (Scalana.Artifact.run_path dir 4)
  in
  check_int "both records intact" 2 (List.length s.values);
  let session = Scalana.Artifact.load_session dir in
  check_int "one run" 1 (List.length session.runs);
  check_bool "no issues" true (session.issues = []);
  (* truncating into the second record falls back to the first *)
  let path = Scalana.Artifact.run_path dir 4 in
  let ic = open_in_bin path in
  let full = in_channel_length ic in
  close_in ic;
  Scalana_runtime.Faults.truncate_file path ~at_byte:(full - 10);
  let runs, issues = Scalana.Artifact.load_runs_salvage dir in
  check_int "salvaged to first record" 1 (List.length runs);
  check_int "damage reported" 1 (List.length issues)

(* --- degraded pipelines --- *)

let test_pipeline_salvaged_session () =
  let dir = Filename.temp_file "scalana" "" in
  Sys.remove dir;
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let static = Scalana.Static.analyze (entry.make ()) in
  Scalana.Artifact.save_static dir static;
  List.iter
    (fun nprocs ->
      Scalana.Artifact.save_run dir
        (Scalana.Prof.run ~cost:entry.cost static ~nprocs ()))
    [ 4; 8; 16 ];
  (* clean session first: the report carries no data-quality section *)
  let clean = Scalana.Artifact.load_session dir in
  let clean_pipe = Scalana.Pipeline.detect_session clean in
  check_bool "clean session is clean" false
    (Scalana.Pipeline.degraded clean_pipe);
  let has needle s =
    try
      ignore (Str.search_forward (Str.regexp_string needle) s 0);
      true
    with Not_found -> false
  in
  check_bool "no quality section when clean" false
    (has "data quality" clean_pipe.report);
  (* now truncate the largest scale's profile mid-record *)
  Scalana_runtime.Faults.truncate_file
    (Scalana.Artifact.run_path dir 16)
    ~at_byte:100;
  let session = Scalana.Artifact.load_session dir in
  check_int "issue recorded" 1 (List.length session.issues);
  let pipe = Scalana.Pipeline.detect_session session in
  Alcotest.(check (list int))
    "surviving scales" [ 4; 8 ]
    (List.map fst pipe.runs);
  check_bool "pipeline degraded" true (Scalana.Pipeline.degraded pipe);
  check_bool "text report has quality section" true
    (has "data quality" pipe.report);
  check_bool "quality names the file" true
    (pipe.quality.Scalana_detect.Quality.artifact_issues <> []);
  check_bool "root causes still found" true (pipe.analysis.causes <> []);
  (* and the HTML report carries the section too *)
  let html = Scalana.Htmlreport.render pipe in
  check_bool "html has quality section" true (has "Data quality" html)

let test_pipeline_fault_kill_degrades () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let faults =
    Scalana_runtime.Faults.plan
      [ Scalana_runtime.Faults.kill_rank ~rank:1 ~after:0.01 () ]
  in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~faults ~scales:[ 4; 8; 16 ]
      (entry.make ())
  in
  check_bool "degraded" true (Scalana.Pipeline.degraded pipe);
  check_bool "run issues recorded" true
    (pipe.quality.Scalana_detect.Quality.run_issues <> []);
  check_bool "coverage below 1" true
    (pipe.quality.Scalana_detect.Quality.rank_coverage < 1.0);
  List.iter
    (fun (r : Scalana_detect.Quality.run_issue) ->
      check_bool "rank 1 killed" true
        (List.mem 1 r.Scalana_detect.Quality.ri_killed))
    pipe.quality.Scalana_detect.Quality.run_issues;
  let has needle s =
    try
      ignore (Str.search_forward (Str.regexp_string needle) s 0);
      true
    with Not_found -> false
  in
  check_bool "report says degraded" true (has "data quality" pipe.report);
  check_bool "report lists the kill" true (has "killed ranks" pipe.report)

let test_pipeline_drop_scale () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let faults =
    Scalana_runtime.Faults.plan [ Scalana_runtime.Faults.drop_scale 16 ]
  in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~faults ~scales:[ 4; 8; 16 ]
      (entry.make ())
  in
  Alcotest.(check (list int))
    "scale 16 never ran" [ 4; 8 ]
    (List.map fst pipe.runs);
  Alcotest.(check (list int))
    "drop recorded" [ 16 ]
    pipe.quality.Scalana_detect.Quality.dropped_scales;
  check_bool "degraded" true (Scalana.Pipeline.degraded pipe)

let test_pipeline_poison_quarantined () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let faults =
    Scalana_runtime.Faults.plan
      [ Scalana_runtime.Faults.poison_metric ~ranks:[ 0 ] ~prob:1.0 `Nan ]
  in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~faults ~scales:[ 4; 8; 16 ]
      (entry.make ())
  in
  check_bool "values quarantined" true
    (pipe.quality.Scalana_detect.Quality.quarantined_values > 0);
  check_bool "degraded" true (Scalana.Pipeline.degraded pipe);
  (* the report still renders over the surviving ranks *)
  check_bool "report renders" true (String.length pipe.report > 100)

let test_pipeline_fault_determinism () =
  (* same seed, same plan: byte-identical degraded reports *)
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let mk () =
    let faults =
      Scalana_runtime.Faults.plan ~seed:7
        [
          Scalana_runtime.Faults.kill_rank ~prob:0.7 ~rank:2 ~after:0.02 ();
          Scalana_runtime.Faults.poison_metric ~prob:0.05 `Negative;
        ]
    in
    (Scalana.Pipeline.run ~cost:entry.cost ~faults ~scales:[ 4; 8 ]
       (entry.make ()))
      .report
  in
  check_string "reports identical" (mk ()) (mk ())

let test_config_mapping () =
  let c = { Scalana.Config.default with abnorm_thd = 2.0; sampling_freq = 97.0 } in
  let ab = Scalana.Config.ab_config c in
  check_float "thd" 2.0 ab.Scalana_detect.Abnormal.abnorm_thd;
  let pc = Scalana.Config.profiler_config c in
  check_float "freq" 97.0 pc.Scalana_profile.Profiler.freq

let test_experiment_speedup_rows () =
  let entry = Scalana_apps.Registry.find "sst" in
  let rows =
    Scalana.Experiment.speedup ~cost:entry.cost ~make:entry.make ~baseline_np:4
      ~scales:[ 4; 16 ] ()
  in
  check_int "two rows" 2 (List.length rows);
  let r0 = List.hd rows in
  close "baseline speedup 1" 1.0 r0.Scalana.Experiment.base_speedup;
  close "baseline opt speedup 1" 1.0 r0.opt_speedup;
  let r1 = List.nth rows 1 in
  (* the array->map fix improves SST at scale (the paper's 73%@32) *)
  check_bool "improvement positive" true (r1.improvement_pct > 10.0);
  check_bool "opt scales better" true (r1.opt_speedup > r1.base_speedup)

let test_viewer_renders () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8 ] (entry.make ())
  in
  let text = Scalana.Viewer.show pipe in
  check_bool "has source view" true
    (try
       ignore (Str.search_forward (Str.regexp_string "source view") text 0);
       true
     with Not_found -> false);
  check_bool "summary lines" true (Scalana.Viewer.summary pipe <> [])

let test_mean_overhead_ordering () =
  let entry = Scalana_apps.Registry.find "mg" in
  let means =
    Scalana.Experiment.mean_overhead ~cost:entry.cost (entry.make ())
      ~scales:[ 4; 8 ]
  in
  let get k = List.assoc k means in
  check_bool "tracing most expensive" true
    (get Scalana.Experiment.Tracing_tool > get Scalana.Experiment.Scalana_tool);
  check_bool "scalana cheap" true (get Scalana.Experiment.Scalana_tool < 10.0)


let test_html_report () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8 ] (entry.make ())
  in
  let html = Scalana.Htmlreport.render pipe in
  let has needle =
    try
      ignore (Str.search_forward (Str.regexp_string needle) html 0);
      true
    with Not_found -> false
  in
  check_bool "is html" true (has "<!doctype html>");
  check_bool "has svg bars" true (has "<svg");
  check_bool "has causes" true (has "Root causes");
  check_bool "mentions bval" true (has "bval");
  (* escaping: raw angle brackets from expressions must not survive *)
  check_bool "escaped" true (not (has "1 << k"));
  let path = Filename.temp_file "scalana" ".html" in
  Scalana.Htmlreport.write pipe ~path;
  check_bool "file written" true (Sys.file_exists path && (Unix.stat path).Unix.st_size > 1000)

(* --- seeded property: the artifact record stream encodes byte-stably.
   Writing arbitrary records, reading them back and writing them again
   must reproduce the first file bit for bit — otherwise re-saved
   sessions would spuriously diff. *)

let prop_artifact_roundtrip_bytes =
  let payload =
    Prop.(
      map
        (fun (tag, len) -> (tag, String.make len 'p'))
        ~show:(fun (tag, s) ->
          Printf.sprintf "(%d, %d bytes)" tag (String.length s))
        (pair (int_range 0 1_000_000) (int_range 0 64)))
  in
  Prop.test ~count:25 "record stream round-trips byte-stably"
    (Prop.list_of ~max_len:6 payload)
    (fun values ->
      (* at least one record, so the stream always has its header *)
      let values = (0, "seed") :: values in
      let write vs =
        let path = Filename.temp_file "scalana_prop" ".art" in
        List.iter (fun v -> Scalana.Artifact.append_value path v) vs;
        path
      in
      let read_bytes path =
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let a = write values in
      let s : (int * string) Scalana.Artifact.salvage =
        Scalana.Artifact.read_stream a
      in
      let b = write s.Scalana.Artifact.values in
      let ok =
        s.Scalana.Artifact.damage = None
        && s.Scalana.Artifact.values = values
        && String.equal (read_bytes a) (read_bytes b)
      in
      Sys.remove a;
      Sys.remove b;
      ok)

(* --- elastic sessions through the pipeline --- *)

let contains needle hay =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

let elastic_config = { Scalana.Config.default with elastic = true }

let test_pipeline_elastic_shrink_degraded () =
  let entry = Scalana_apps.Registry.find "cg-shrink" in
  let plan = Option.get entry.elastic_plan in
  let pipe =
    Scalana.Pipeline.run ~config:elastic_config ~cost:entry.cost
      ~scales:[ 4; 8 ] ~elastic:plan (entry.make ())
  in
  (* a mid-run failure is a degraded verdict: CI must not read it clean *)
  check_bool "degraded" true (Scalana.Pipeline.degraded pipe);
  check_bool "membership section" true
    (contains "elastic membership timeline" pipe.report);
  check_bool "stall attribution" true (contains "recovery-stall" pipe.report);
  check_bool "elastic evidence attached" true
    (pipe.analysis.Scalana_detect.Rootcause.elastic <> []);
  (* the fits see the time-weighted effective process count, strictly
     below nominal once a rank has left *)
  List.iter
    (fun (np, info) ->
      check_bool
        (Printf.sprintf "effective < nominal at np=%d" np)
        true
        (info.Elastic.effective < float_of_int np))
    pipe.analysis.Scalana_detect.Rootcause.elastic

let test_pipeline_elastic_grow_not_degraded () =
  let entry = Scalana_apps.Registry.find "halo-grow" in
  let plan = Option.get entry.elastic_plan in
  let pipe =
    Scalana.Pipeline.run ~config:elastic_config ~cost:entry.cost
      ~scales:[ 4; 8 ] ~elastic:plan (entry.make ())
  in
  (* a planned grow is not a failure: the session stays clean *)
  check_bool "not degraded" false (Scalana.Pipeline.degraded pipe);
  check_bool "membership section" true
    (contains "elastic membership timeline" pipe.report);
  List.iter
    (fun (np, info) ->
      check_bool
        (Printf.sprintf "effective > nominal at np=%d" np)
        true
        (info.Elastic.effective > float_of_int np))
    pipe.analysis.Scalana_detect.Rootcause.elastic

let test_pipeline_elastic_flag_off_identical () =
  (* config.elastic on a session with no membership changes must leave
     the report byte-identical *)
  let entry = Scalana_apps.Registry.find "cg" in
  let report config =
    (Scalana.Pipeline.run ~config ~cost:entry.cost ~scales:[ 4; 8 ]
       (entry.make ()))
      .Scalana.Pipeline.report
  in
  check_bool "byte-identical" true
    (String.equal (report Scalana.Config.default) (report elastic_config))

(* A tiny iteration-sliced ring so the seeded property below stays
   cheap: same shape as the registry elastic apps, two orders of
   magnitude less work. *)
let elastic_ring () =
  let open Expr.Infix in
  let b = Builder.create ~file:"ering.mmp" ~name:"ering" () in
  Builder.param b "w" 20_000;
  Builder.param b "iter_lo" 0;
  Builder.param b "iter_hi" 8;
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~label:"iter" ~var:"it"
          ~count:(p "iter_hi" - p "iter_lo")
          (fun () ->
            [
              Builder.comp b ~label:"work" ~flops:(p "w") ~mem:(p "w") ();
              Builder.sendrecv b
                ~dest:((rank + i 1) % np)
                ~sbytes:(i 2048)
                ~src:((rank - i 1 + np) % np)
                ~rbytes:(i 2048) ();
            ]);
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.program b

let prop_elastic_same_seed_byte_identical =
  let arb = Prop.pair (Prop.int_range 1 7) (Prop.int_range 0 3) in
  Prop.test ~count:6 "same-seed elastic sessions render byte-identical" arb
    (fun (iter, rank) ->
      (* one shrink plus one (possibly out-of-range, then ignored) grow *)
      let plan =
        Elastic.plan ~total_iters:8
          [
            Elastic.shrink_at ~iter ~rank;
            Elastic.grow_at ~iter:(iter + 2) ~ranks:1;
          ]
      in
      let report () =
        (Scalana.Pipeline.run ~config:elastic_config ~scales:[ 4 ]
           ~elastic:plan (elastic_ring ()))
          .Scalana.Pipeline.report
      in
      String.equal (report ()) (report ()))

let test_retry_backoff () =
  (* the ladder itself: deterministic, doubling *)
  close "attempt 1" 0.05 (Scalana.Prof.backoff_delay ~attempt:1);
  close "attempt 2" 0.1 (Scalana.Prof.backoff_delay ~attempt:2);
  close "attempt 3" 0.2 (Scalana.Prof.backoff_delay ~attempt:3);
  (* a persistent kill forces every retry: one recorded backoff per
     extra attempt, in ladder order, surfaced in the quality section *)
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let faults =
    Scalana_runtime.Faults.plan
      [ Scalana_runtime.Faults.kill_rank ~rank:1 ~after:0.01 () ]
  in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~faults ~scales:[ 4 ]
      (entry.make ())
  in
  let _, run = List.hd pipe.runs in
  check_bool "retried" true (run.Scalana.Prof.attempts > 1);
  check_int "one backoff per retry"
    (run.Scalana.Prof.attempts - 1)
    (List.length run.Scalana.Prof.retry_backoff);
  List.iteri
    (fun idx d ->
      close
        (Printf.sprintf "ladder step %d" (idx + 1))
        (Scalana.Prof.backoff_delay ~attempt:(idx + 1))
        d)
    run.Scalana.Prof.retry_backoff;
  check_bool "quality mentions backoff" true (contains "backoff" pipe.report)

let () =
  Alcotest.run "core"
    [
      ( "static",
        [
          Alcotest.test_case "analyze" `Quick test_static_analyze;
          Alcotest.test_case "rejects invalid" `Quick test_static_rejects_invalid;
          Alcotest.test_case "overhead measurable" `Slow
            test_static_overhead_measurable;
        ] );
      ( "prof",
        [
          Alcotest.test_case "run and overhead" `Quick test_prof_run_and_overhead;
          Alcotest.test_case "refines indirect calls" `Quick
            test_prof_refines_indirect;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "end to end" `Quick test_pipeline_end_to_end;
          Alcotest.test_case "fig2 injected delay" `Quick
            test_fig2_injected_delay;
          Alcotest.test_case "accessors" `Quick test_pipeline_accessors;
          Alcotest.test_case "param override" `Quick test_param_override;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "roundtrip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_artifact_bad_magic;
          Alcotest.test_case "truncate at every offset" `Quick
            test_artifact_truncate_every_boundary;
          Alcotest.test_case "bit-flip salvage" `Quick
            test_artifact_bit_flip_salvage;
          Alcotest.test_case "decode failure surfaced" `Quick
            test_artifact_decode_failure_surfaced;
          Alcotest.test_case "append, last record wins" `Quick
            test_artifact_append_last_wins;
          prop_artifact_roundtrip_bytes;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "salvaged session" `Quick
            test_pipeline_salvaged_session;
          Alcotest.test_case "rank kill degrades" `Quick
            test_pipeline_fault_kill_degrades;
          Alcotest.test_case "dropped scale" `Quick test_pipeline_drop_scale;
          Alcotest.test_case "poison quarantined" `Quick
            test_pipeline_poison_quarantined;
          Alcotest.test_case "fault determinism" `Quick
            test_pipeline_fault_determinism;
        ] );
      ( "config",
        [ Alcotest.test_case "mapping" `Quick test_config_mapping ] );
      ( "experiment",
        [
          Alcotest.test_case "speedup rows" `Quick test_experiment_speedup_rows;
          Alcotest.test_case "mean overhead ordering" `Slow
            test_mean_overhead_ordering;
        ] );
      ( "viewer",
        [
          Alcotest.test_case "renders" `Quick test_viewer_renders;
          Alcotest.test_case "html report" `Quick test_html_report;
        ] );
      ( "elastic",
        [
          Alcotest.test_case "shrink degrades the verdict" `Quick
            test_pipeline_elastic_shrink_degraded;
          Alcotest.test_case "grow stays clean" `Quick
            test_pipeline_elastic_grow_not_degraded;
          Alcotest.test_case "flag off is byte-identical" `Quick
            test_pipeline_elastic_flag_off_identical;
          prop_elastic_same_seed_byte_identical;
          Alcotest.test_case "retry backoff ladder" `Quick test_retry_backoff;
        ] );
    ]
