(* Tests for the detection pipeline: aggregation strategies, log-log
   fitting, non-scalable and abnormal vertex detection, backtracking and
   root-cause extraction. *)

open Scalana_psg
open Scalana_ppg
open Scalana_detect
open Testutil

(* --- aggregate --- *)

let test_aggregate_basic () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Aggregate.apply Aggregate.Mean a);
  check_float "median even" 2.5 (Aggregate.apply Aggregate.Median a);
  check_float "median odd" 2.0 (Aggregate.apply Aggregate.Median [| 1.0; 2.0; 3.0 |]);
  check_float "single" 3.0 (Aggregate.apply (Aggregate.Single 2) a);
  check_float "single oob" 0.0 (Aggregate.apply (Aggregate.Single 9) a);
  check_float "empty mean" 0.0 (Aggregate.apply Aggregate.Mean [||]);
  close "variance weighted"
    (2.5 +. sqrt 1.25)
    (Aggregate.apply Aggregate.Variance_weighted a)

let test_kmeans () =
  (* two clear clusters: 8 small, 2 large *)
  let a = [| 1.0; 1.1; 0.9; 1.0; 1.05; 0.95; 1.0; 1.0; 10.0; 10.2 |] in
  let clusters = Aggregate.kmeans ~k:2 a in
  check_int "two clusters" 2 (Array.length clusters);
  let sizes = Array.map snd clusters |> Array.to_list |> List.sort compare in
  Alcotest.(check (list int)) "cluster sizes" [ 2; 8 ] sizes;
  (* the strategy keeps the heavy (slow) cluster centroid *)
  let v = Aggregate.apply (Aggregate.Kmeans 2) a in
  check_bool "heavy cluster" true (v > 9.0 && v < 11.0)

let kmeans_total =
  qtest ~count:100 "kmeans partitions all points"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 100.0))
    (fun l ->
      let a = Array.of_list l in
      let clusters = Aggregate.kmeans ~k:3 a in
      Array.fold_left (fun acc (_, n) -> acc + n) 0 clusters = Array.length a)

(* --- loglog --- *)

let test_loglog_exact_powerlaw () =
  (* T = 100 * P^-1 *)
  let pts = List.map (fun p -> (p, 100.0 /. float_of_int p)) [ 2; 4; 8; 16 ] in
  let f = Loglog.fit pts in
  close "slope" (-1.0) f.Loglog.slope;
  close "r2" 1.0 f.Loglog.r2;
  close "predict 32" (100.0 /. 32.0) (Loglog.predict f 32)

let test_loglog_flat () =
  let pts = List.map (fun p -> (p, 7.0)) [ 2; 4; 8; 16 ] in
  let f = Loglog.fit pts in
  close "slope 0" 0.0 f.Loglog.slope;
  close "predict" 7.0 (Loglog.predict f 64)

let test_loglog_degenerate () =
  check_int "too few points" 1 (Loglog.fit [ (4, 1.0) ]).Loglog.n;
  check_float "zero slope" 0.0 (Loglog.fit [ (4, 1.0) ]).Loglog.slope;
  (* non-positive values are dropped *)
  let f = Loglog.fit [ (2, 0.0); (4, 1.0); (8, 0.5) ] in
  check_int "dropped zero" 2 f.Loglog.n

let loglog_recovers_slope =
  qtest ~count:100 "loglog recovers planted slope"
    QCheck2.Gen.(float_range (-2.0) 1.0)
    (fun slope ->
      let pts =
        List.map
          (fun p -> (p, 3.0 *. (float_of_int p ** slope)))
          [ 2; 4; 8; 16; 32 ]
      in
      abs_float ((Loglog.fit pts).Loglog.slope -. slope) < 1e-6)

(* --- end-to-end detection fixtures --- *)

let zeus_pipeline =
  lazy
    (let entry = Scalana_apps.Registry.find "zeusmp" in
     Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8; 16; 32 ]
       (entry.make ()))

let test_nonscalable_flags_waitall_and_bval () =
  let pipe = Lazy.force zeus_pipeline in
  let labels =
    List.map
      (fun (f : Nonscalable.finding) ->
        Vertex.label (Psg.vertex (Scalana.Static.psg pipe.static) f.vertex))
      pipe.analysis.nonscalable
  in
  check_bool "waitall flagged" true
    (List.exists (fun l -> l = "MPI_Waitall") labels);
  check_bool "bval flagged" true
    (List.exists
       (fun l -> String.length l >= 4 && String.sub l 0 4 = "bval")
       labels);
  (* every finding is above the significance floor *)
  List.iter
    (fun (f : Nonscalable.finding) ->
      check_bool "score floor" true (f.score >= 0.25);
      check_bool "fraction floor" true (f.fraction >= 0.01))
    pipe.analysis.nonscalable

(* Regression: a session whose ranks were *all* killed leaves behind a
   nearly empty profile, and the elastic accounting of such a run can
   leave NaN in [Profdata.effective_nprocs].  [Ppg.coverage] and
   [Crossscale.effective_scale] must both degrade to finite values — the
   effective scale falls back to the nominal count — so
   [Loglog.fit_scaled] never sees NaN on either axis. *)
let test_killed_all_ranks_finite () =
  let entry = Scalana_apps.Registry.find "cg" in
  let scales = [ 4; 8; 16 ] in
  let runs =
    List.map
      (fun nprocs ->
        let static =
          Scalana.Static.analyze (entry.Scalana_apps.Registry.make ())
        in
        let faults =
          Scalana_runtime.Faults.plan ~seed:11
            (List.init nprocs (fun r ->
                 Scalana_runtime.Faults.kill_rank ~rank:r ~after:1e-9 ()))
        in
        let r =
          Scalana.Prof.run ~faults ~cost:entry.Scalana_apps.Registry.cost
            static ~nprocs ()
        in
        (* simulate the accounting of a fully-lost session *)
        r.Scalana.Prof.data.Scalana_profile.Profdata.effective_nprocs <-
          Float.nan;
        (Scalana.Static.psg static, nprocs, r.Scalana.Prof.data))
      scales
  in
  let psg, _, _ = List.hd runs in
  let cs = Crossscale.create ~psg (List.map (fun (_, n, d) -> (n, d)) runs) in
  List.iter
    (fun n ->
      let e = Crossscale.effective_scale cs ~nprocs:n in
      check_bool "effective scale finite" true (Float.is_finite e);
      check_float "falls back to nominal" (float_of_int n) e)
    scales;
  let _, largest = Crossscale.largest cs in
  (* coverage stays finite on every vertex, including ones nobody
     survived long enough to report *)
  List.iter
    (fun v ->
      let c = Ppg.coverage largest ~vertex:v in
      check_bool "coverage finite" true (Float.is_finite c);
      check_bool "coverage in range" true (c >= 0.0 && c <= 1.0))
    (Ppg.touched_vertices largest);
  check_float "absent vertex coverage" 0.0
    (Ppg.coverage largest ~vertex:999_999);
  let result = Nonscalable.detect_result cs in
  List.iter
    (fun (f : Nonscalable.finding) ->
      check_bool "slope finite" true (Float.is_finite f.slope);
      check_bool "score finite" true (Float.is_finite f.score))
    result.Nonscalable.findings

let test_nonscalable_ignores_scalable_compute () =
  let pipe = Lazy.force zeus_pipeline in
  let labels =
    List.map
      (fun (f : Nonscalable.finding) ->
        Vertex.label (Psg.vertex (Scalana.Static.psg pipe.static) f.vertex))
      pipe.analysis.nonscalable
  in
  (* the volume work scales ~1/np and must not be reported *)
  check_bool "hsmoc not flagged" true
    (not (List.exists (fun l -> l = "hsmoc_665_body") labels))

let test_abnormal_detection () =
  let pipe = Lazy.force zeus_pipeline in
  let ab = pipe.analysis.abnormal in
  check_bool "findings exist" true (ab <> []);
  (* the busy-rank bval comps deviate infinitely (median 0) *)
  let bval =
    List.filter
      (fun (f : Abnormal.finding) ->
        let l = Vertex.label (Psg.vertex (Scalana.Static.psg pipe.static) f.vertex) in
        try
          ignore (Str.search_forward (Str.regexp_string "_update") l 0);
          String.length l >= 4 && String.sub l 0 4 = "bval"
        with Not_found -> false)
      ab
  in
  check_bool "bval abnormal" true (bval <> []);
  List.iter
    (fun (f : Abnormal.finding) ->
      (* at np=32, exactly the 8 busy ranks deviate *)
      check_int "busy ranks" 8 (List.length f.ranks);
      List.iter (fun r -> check_int "mod 4" 0 (r mod 4)) f.ranks)
    bval

let test_abnormal_threshold_monotone () =
  let pipe = Lazy.force zeus_pipeline in
  let _, ppg = Crossscale.largest pipe.crossscale in
  let count thd =
    List.length
      (Abnormal.detect ~config:{ Abnormal.default_config with abnorm_thd = thd } ppg)
  in
  check_bool "higher threshold, fewer findings" true (count 5.0 <= count 1.1)

let test_backtracking_reaches_bval () =
  let pipe = Lazy.force zeus_pipeline in
  let labels = Scalana.Pipeline.root_cause_labels pipe in
  check_bool "causes found" true (labels <> []);
  check_bool "bval is a top cause" true
    (List.exists
       (fun l ->
         try ignore (Str.search_forward (Str.regexp_string "bval") l 0); true
         with Not_found -> false)
       (match labels with a :: b :: c :: _ -> [ a; b; c ] | l -> l))

let test_backtracking_paths_cross_processes () =
  let pipe = Lazy.force zeus_pipeline in
  check_bool "paths exist" true (pipe.analysis.paths <> []);
  check_bool "some path spans processes" true
    (List.exists
       (fun p -> List.length (Backtrack.ranks_of p) > 1)
       pipe.analysis.paths);
  (* every path starts at its start vertex and is acyclic per (rank,vid) *)
  List.iter
    (fun path ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (s : Backtrack.step) ->
          let k = (s.rank, s.vertex) in
          if Hashtbl.mem seen k then Alcotest.fail "cycle in path";
          Hashtbl.replace seen k ())
        path)
    pipe.analysis.paths

let test_backtracking_pruning_matters () =
  let pipe = Lazy.force zeus_pipeline in
  let _, ppg = Crossscale.largest pipe.crossscale in
  (* from a waitall on a waiting rank: pruned walk crosses to the busy
     rank; unpruned follows some comm edge too, but both terminate *)
  match pipe.analysis.nonscalable with
  | [] -> Alcotest.fail "no start vertex"
  | f :: _ ->
      let start_rank = Rootcause.start_rank ppg ~vertex:f.vertex in
      let visited = Hashtbl.create 16 in
      let pruned =
        Backtrack.backtrack ppg ~visited ~start_rank ~start_vertex:f.vertex
      in
      let visited2 = Hashtbl.create 16 in
      let unpruned =
        Backtrack.backtrack
          ~config:{ Backtrack.default_config with prune_non_wait = false }
          ppg ~visited:visited2 ~start_rank ~start_vertex:f.vertex
      in
      check_bool "pruned path nonempty" true (pruned <> []);
      check_bool "unpruned path nonempty" true (unpruned <> [])

let test_rootcause_ranking () =
  let pipe = Lazy.force zeus_pipeline in
  let causes = pipe.analysis.causes in
  check_bool "causes exist" true (causes <> []);
  (* ranking is by (paths, time, imbalance) descending *)
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
        check_bool "sorted" true
          ((a : Rootcause.cause).n_paths >= (b : Rootcause.cause).n_paths
          || a.n_paths = b.n_paths);
        check_sorted rest
    | _ -> ()
  in
  check_sorted causes

let test_report_renders () =
  let pipe = Lazy.force zeus_pipeline in
  let report = pipe.report in
  check_bool "mentions non-scalable section" true
    (String.length report > 0
    && Str.string_match (Str.regexp ".*non-scalable.*") report 0
       ||
       try
         ignore (Str.search_forward (Str.regexp_string "non-scalable") report 0);
         true
       with Not_found -> false);
  (try
     ignore (Str.search_forward (Str.regexp_string "root causes") report 0)
   with Not_found -> Alcotest.fail "no root-cause section");
  try ignore (Str.search_forward (Str.regexp_string "bval") report 0)
  with Not_found -> Alcotest.fail "bval not in report"

(* detection on a healthy program stays quiet *)
let test_healthy_program_quiet () =
  let entry = Scalana_apps.Registry.find "ep" in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8; 16 ] (entry.make ())
  in
  (* EP is embarrassingly parallel: no compute vertex should be flagged *)
  let compute_findings =
    List.filter
      (fun (f : Nonscalable.finding) ->
        Vertex.is_comp (Psg.vertex (Scalana.Static.psg pipe.static) f.vertex))
      pipe.analysis.nonscalable
  in
  check_int "no non-scalable compute" 0 (List.length compute_findings)


(* end-to-end detection on the SST and Nekbone case studies *)
let case_study_finds name scales expected =
  let entry = Scalana_apps.Registry.find name in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~scales (entry.make ())
  in
  let labels = Scalana.Pipeline.root_cause_labels pipe in
  let found =
    List.exists
      (fun l ->
        List.exists
          (fun e ->
            try
              ignore (Str.search_forward (Str.regexp_string e) l 0);
              true
            with Not_found -> false)
          expected)
      labels
  in
  if not found then
    Alcotest.failf "%s: expected one of [%s] among causes [%s]" name
      (String.concat "," expected)
      (String.concat "; " labels)

let test_sst_case () =
  case_study_finds "sst" [ 4; 8; 16; 32 ]
    [ "satisfyDependency"; "handleEvent" ]

let test_nekbone_case () =
  case_study_finds "nekbone" [ 4; 8; 16; 32 ] [ "dgemm" ]


(* --- def-use backtracking --- *)

let test_follow_def_use_changes_step () =
  (* loop it { barrier; let w = it*100; comp(w) }: the comp's value
     chains through the let to the loop variable, so with the flag on
     the walk steps comp -> loop along the recorded def-use edge; with
     it off (paper-faithful) it steps to the previous sibling, the
     barrier *)
  let prog =
    let open Scalana_mlang in
    let open Expr.Infix in
    let b = Builder.create ~file:"fd.mmp" ~name:"fd" () in
    Builder.func b "main" (fun () ->
        [
          Builder.loop b ~var:"it" ~count:(i 4) (fun () ->
              [
                Builder.barrier b;
                Builder.let_ b "w" (v "it" * i 1_000_000);
                Builder.comp b ~flops:(v "w" + i 1_000_000) ~mem:(i 1000) ();
              ]);
        ]);
    Builder.program b
  in
  let pipe = Scalana.Pipeline.run ~scales:[ 2; 4 ] prog in
  let psg = Scalana.Static.psg pipe.static in
  let _, ppg = Crossscale.largest pipe.crossscale in
  let one pred name =
    match Psg.find_all pred psg with
    | [ v ] -> v.Vertex.id
    | _ -> Alcotest.failf "expected one %s vertex" name
  in
  let comp = one Vertex.is_comp "comp" in
  let loop = one Vertex.is_loop "loop" in
  let barrier = one Vertex.is_mpi "barrier" in
  check_bool "def-use edge recorded" true
    (List.mem loop (Psg.data_deps psg comp));
  let walk follow_def_use =
    Backtrack.backtrack
      ~config:{ Backtrack.default_config with follow_def_use }
      ppg
      ~visited:(Hashtbl.create 16)
      ~start_rank:0 ~start_vertex:comp
  in
  let second path =
    match (path : Backtrack.path) with
    | _ :: (s : Backtrack.step) :: _ -> (s.vertex, s.via)
    | _ -> Alcotest.fail "walk too short"
  in
  let v_off, via_off = second (walk false) in
  check_int "flag off: previous sibling" barrier v_off;
  check_bool "flag off: sibling-order step" true (via_off = Backtrack.Data_dep);
  let v_on, via_on = second (walk true) in
  check_int "flag on: def-use target" loop v_on;
  check_bool "flag on: def-use step" true (via_on = Backtrack.Def_use)

(* --- critical-path extension --- *)

let traced_run ?(nprocs = 4) prog =
  let tr = Scalana_baselines.Tracer.create () in
  let cfg =
    Scalana_runtime.Exec.config ~nprocs
      ~tools:[ Scalana_baselines.Tracer.tool tr ] ()
  in
  let r = Scalana_runtime.Exec.run ~cfg prog in
  (Scalana_baselines.Tracer.events tr, r)

let test_critpath_planted_loop () =
  (* rank 0 computes a long loop before every barrier: the loop must
     dominate the critical path even though it runs on one rank *)
  let prog =
    let open Scalana_mlang in
    let open Expr.Infix in
    let b = Builder.create ~file:"cp.mmp" ~name:"cp" () in
    Builder.func b "main" (fun () ->
        [
          Builder.loop b ~var:"s" ~count:(i 5) (fun () ->
              [
                Builder.branch b ~cond:(rank = i 0) (fun () ->
                    [
                      Builder.comp b ~label:"slow_loop" ~flops:(i 60_000_000)
                        ~mem:(i 30_000_000) ();
                    ]);
                Builder.comp b ~label:"balanced" ~flops:(i 1_000_000)
                  ~mem:(i 500_000) ();
                Builder.barrier b;
              ]);
        ]);
    Builder.program b
  in
  let events, r = traced_run prog in
  let cp = Critpath.analyze events in
  (* the chain covers most of the run (elapsed includes tracing
     overhead, which is not on the chain) *)
  check_bool "chain covers the run" true (cp.Critpath.total > 0.5 *. r.elapsed);
  match Critpath.top ~n:1 cp with
  | [ (loc, seconds) ] ->
      check_bool "slow loop tops the chain" true
        (try
           ignore (Str.search_forward (Str.regexp_string "slow_loop") loc 0);
           true
         with Not_found -> false);
      check_bool "dominant share" true (seconds > 0.8 *. cp.Critpath.total)
  | _ -> Alcotest.fail "no top location"

let test_critpath_empty_and_balanced () =
  let cp = Critpath.analyze [] in
  check_bool "empty trace" true (cp.Critpath.total = 0.0 && cp.segments = []);
  (* a balanced ring: the chain is roughly one rank's compute time *)
  let prog = ring_program ~niter:10 ~work:2_000_000 () in
  let events, r = traced_run prog in
  let cp = Critpath.analyze events in
  check_bool "chain within elapsed" true
    (cp.Critpath.total <= r.elapsed *. 1.01);
  check_bool "chain covers most of elapsed" true
    (cp.Critpath.total > 0.5 *. r.elapsed)

let test_critpath_agrees_with_backtracking () =
  (* zeus-mp: the bval updates must appear on the critical path, the
     same code backtracking blames *)
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let tr = Scalana_baselines.Tracer.create () in
  let cfg =
    Scalana_runtime.Exec.config ~nprocs:8 ~cost:entry.cost
      ~tools:[ Scalana_baselines.Tracer.tool tr ] ()
  in
  ignore (Scalana_runtime.Exec.run ~cfg (entry.make ()));
  let cp = Critpath.analyze (Scalana_baselines.Tracer.events tr) in
  let on_chain =
    List.exists
      (fun (loc, s) ->
        s > 0.0
        &&
        try
          ignore (Str.search_forward (Str.regexp_string "bval") loc 0);
          true
        with Not_found -> false)
      cp.Critpath.by_location
  in
  check_bool "bval on the chain" true on_chain

(* --- seeded properties through the stdlib Prop harness --- *)

(* Floats as the profiler might hand them over after faults: NaN from a
   broken counter, negative garbage, infinities, zeros and plain values. *)
let messy_float =
  let open Prop in
  {
    gen =
      (fun r ->
        match below r 8 with
        | 0 -> Float.nan
        | 1 -> -.(float_of_int (below r 10_000) /. 100.0)
        | 2 -> Float.infinity
        | 3 -> 0.0
        | _ -> float_of_int (below r 10_000) /. 100.0);
    shrink = (fun _ -> []);
    show = (fun x -> Printf.sprintf "%h" x);
  }

let prop_sanitize_idempotent =
  Prop.test ~count:200 "sanitize is idempotent"
    (Prop.list_of ~max_len:24 messy_float)
    (fun l ->
      let a = Array.of_list l in
      let once, dropped = Aggregate.sanitize a in
      let twice, dropped_again = Aggregate.sanitize once in
      dropped_again = 0
      && twice == once (* clean input passes through physically unchanged *)
      && dropped = Array.length a - Array.length once
      && not (Array.exists (fun x -> Float.is_nan x || x < 0.0) once))

let prop_fit_recovers_slope =
  Prop.test ~count:200 "fit recovers planted slope (shrinking harness)"
    Prop.(pair (float_range (-2.5) 1.5) (float_range 0.1 50.0))
    (fun (slope, coeff) ->
      let pts =
        List.map
          (fun p -> (p, coeff *. (float_of_int p ** slope)))
          [ 2; 4; 8; 16; 32; 64 ]
      in
      abs_float ((Loglog.fit pts).Loglog.slope -. slope) < 1e-6)

let () =
  Alcotest.run "detect"
    [
      ( "aggregate",
        [
          Alcotest.test_case "basic strategies" `Quick test_aggregate_basic;
          Alcotest.test_case "kmeans clusters" `Quick test_kmeans;
          kmeans_total;
          prop_sanitize_idempotent;
        ] );
      ( "loglog",
        [
          Alcotest.test_case "exact power law" `Quick test_loglog_exact_powerlaw;
          Alcotest.test_case "flat series" `Quick test_loglog_flat;
          Alcotest.test_case "degenerate input" `Quick test_loglog_degenerate;
          loglog_recovers_slope;
          prop_fit_recovers_slope;
        ] );
      ( "nonscalable",
        [
          Alcotest.test_case "flags waitall and bval" `Quick
            test_nonscalable_flags_waitall_and_bval;
          Alcotest.test_case "ignores scalable compute" `Quick
            test_nonscalable_ignores_scalable_compute;
          Alcotest.test_case "killed-all-ranks stays finite" `Quick
            test_killed_all_ranks_finite;
        ] );
      ( "abnormal",
        [
          Alcotest.test_case "busy-rank detection" `Quick
            test_abnormal_detection;
          Alcotest.test_case "threshold monotone" `Quick
            test_abnormal_threshold_monotone;
        ] );
      ( "backtrack",
        [
          Alcotest.test_case "reaches bval loop" `Quick
            test_backtracking_reaches_bval;
          Alcotest.test_case "paths cross processes" `Quick
            test_backtracking_paths_cross_processes;
          Alcotest.test_case "def-use flag changes step" `Quick
            test_follow_def_use_changes_step;
          Alcotest.test_case "pruning config" `Quick
            test_backtracking_pruning_matters;
        ] );
      ( "rootcause",
        [
          Alcotest.test_case "ranking" `Quick test_rootcause_ranking;
          Alcotest.test_case "report renders" `Quick test_report_renders;
          Alcotest.test_case "healthy program quiet" `Quick
            test_healthy_program_quiet;
          Alcotest.test_case "sst case study" `Slow test_sst_case;
          Alcotest.test_case "nekbone case study" `Slow test_nekbone_case;
        ] );
      ( "critpath",
        [
          Alcotest.test_case "planted loop dominates" `Quick
            test_critpath_planted_loop;
          Alcotest.test_case "empty and balanced" `Quick
            test_critpath_empty_and_balanced;
          Alcotest.test_case "agrees with backtracking" `Quick
            test_critpath_agrees_with_backtracking;
        ] );
    ]
