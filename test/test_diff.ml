(* Tests for cross-session diffing (Diff) and the history ledger
   (History): structural alignment, verdict classification against the
   thresholds, one-sided vertices, degraded inputs, ledger round-trip
   and salvage, trend queries, and a seeded determinism property. *)

open Scalana_mlang
open Scalana_detect
open Testutil
module History = Scalana_obs.History
module Json = Scalana_obs.Obs.Json

let scales = [ 4; 8; 16 ]

(* work sized so the sampling profiler actually lands samples on the
   compute vertex (cf. test_detect's ring usage) *)
let pipeline ?inject ?faults ?(niter = 10) ?(work = 2_000_000) () =
  Scalana.Pipeline.run ?inject ?faults ~scales (ring_program ~niter ~work ())

let summary ?label ?inject ?faults ?niter ?work () =
  Scalana.Pipeline.diff_summary ?label (pipeline ?inject ?faults ?niter ?work ())

(* ring_program with an optional extra compute block after the loop, so
   the candidate session can carry a vertex the baseline never had. *)
let ring_with_tail ?(tail = false) () =
  let open Expr.Infix in
  let b = Builder.create ~file:"ring.mmp" ~name:"ring" () in
  Builder.param b "w" 2_000_000;
  Builder.param b "niter" 10;
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~label:"iter" ~var:"it" ~count:(p "niter") (fun () ->
            [
              Builder.comp b ~label:"work" ~flops:(p "w") ~mem:(p "w") ();
              Builder.sendrecv b
                ~dest:((rank + i 1) % np)
                ~sbytes:(i 4096)
                ~src:((rank - i 1 + np) % np)
                ~rbytes:(i 4096) ();
            ]);
        Builder.allreduce b ~bytes:(i 8);
      ]
      @
      if tail then
        [ Builder.comp b ~label:"tail" ~flops:(p "w" * i 4) ~mem:(p "w") () ]
      else []);
  Builder.program b

let find_delta d ~label =
  List.find_opt (fun dl -> String.equal dl.Diff.d_key.Diff.k_label label)
    d.Diff.deltas

(* --- alignment and classification --- *)

let test_self_diff_clean () =
  let base = summary ~label:"base" () in
  let cand = summary ~label:"cand" () in
  let d = Diff.compare_summaries ~base ~cand () in
  check_bool "no regressions" false (Diff.has_regressions d);
  check_int "nothing new" 0 d.Diff.n_new;
  check_int "nothing gone" 0 d.Diff.n_gone;
  check_int "nothing improved" 0 d.Diff.n_improved;
  check_bool "not degraded" false d.Diff.degraded;
  check_bool "something aligned unchanged" true (d.Diff.n_unchanged > 0);
  List.iter
    (fun dl ->
      check_string "verdict unchanged" "unchanged"
        (Diff.verdict_name dl.Diff.d_verdict))
    d.Diff.deltas

let test_time_regression_detected () =
  let base = summary ~label:"base" () in
  (* 4x the compute: same slope, 4x the largest-scale time on "work" *)
  let cand = summary ~label:"cand" ~work:8_000_000 () in
  let d = Diff.compare_summaries ~base ~cand () in
  check_bool "regression found" true (Diff.has_regressions d);
  match find_delta d ~label:"work" with
  | None -> Alcotest.fail "comp vertex \"work\" not aligned"
  | Some dl ->
      check_string "work regressed" "regressed"
        (Diff.verdict_name dl.Diff.d_verdict);
      check_bool "time grew past tolerance" true (dl.Diff.d_time_ratio > 1.25);
      check_bool "a reason names the trigger" true
        (List.exists
           (fun r ->
             try
               ignore (Str.search_forward (Str.regexp_string "time") r 0);
               true
             with Not_found -> false)
           dl.Diff.d_reasons)

let test_improvement_detected () =
  let base = summary ~label:"base" ~work:8_000_000 () in
  let cand = summary ~label:"cand" () in
  let d = Diff.compare_summaries ~base ~cand () in
  check_bool "no regressions" false (Diff.has_regressions d);
  check_bool "improvement found" true (d.Diff.n_improved > 0)

let test_one_sided_vertices () =
  let summarize prog =
    Scalana.Pipeline.diff_summary (Scalana.Pipeline.run ~scales prog)
  in
  let plain = summarize (ring_with_tail ()) in
  let tailed = summarize (ring_with_tail ~tail:true ()) in
  (* vertex only in the candidate -> New *)
  let d = Diff.compare_summaries ~base:plain ~cand:tailed () in
  check_bool "new vertices counted" true (d.Diff.n_new > 0);
  (match find_delta d ~label:"tail" with
  | None -> Alcotest.fail "tail vertex missing from diff"
  | Some dl ->
      check_string "tail is new" "new" (Diff.verdict_name dl.Diff.d_verdict);
      check_bool "no baseline side" true (dl.Diff.d_base = None));
  (* swapped: vertex only in the baseline -> Gone *)
  let d = Diff.compare_summaries ~base:tailed ~cand:plain () in
  check_bool "gone vertices counted" true (d.Diff.n_gone > 0);
  match find_delta d ~label:"tail" with
  | None -> Alcotest.fail "tail vertex missing from swapped diff"
  | Some dl ->
      check_string "tail is gone" "gone" (Diff.verdict_name dl.Diff.d_verdict);
      check_bool "no candidate side" true (dl.Diff.d_cand = None)

let test_degraded_input_dominates () =
  let base = summary ~label:"base" () in
  (* every rank of the smallest scale killed: the session survives on
     the other scales but is unmistakably degraded *)
  let faults =
    Scalana_runtime.Faults.plan
      (List.init 4 (fun r ->
           Scalana_runtime.Faults.kill_rank ~rank:r ~after:0.0001 ()))
  in
  let cand = summary ~label:"cand" ~faults () in
  check_bool "candidate session degraded" true cand.Diff.s_degraded;
  let d = Diff.compare_summaries ~base ~cand () in
  check_bool "diff carries the degradation" true d.Diff.degraded;
  (* and a clean pair stays clean *)
  let d = Diff.compare_summaries ~base ~cand:base () in
  check_bool "clean pair not degraded" false d.Diff.degraded

(* --- threshold boundary exactness (hand-built summaries) --- *)

let vstat ?slope ~time () =
  {
    Diff.vs_slope = slope;
    vs_points = 3;
    vs_coverage = 1.0;
    vs_time = time;
    vs_wait = 0.0;
    vs_fraction = 1.0;
    vs_wait_mix = [];
  }

let hand_summary ~label vertices =
  {
    Diff.s_label = label;
    s_program = "hand";
    s_scales = scales;
    s_degraded = false;
    s_rank_coverage = 1.0;
    s_total_time = List.fold_left (fun a (_, v) -> a +. v.Diff.vs_time) 0.0 vertices;
    s_wait_mix = [];
    s_vertices = vertices;
  }

let hand_key = { Diff.k_label = "work"; k_loc = "ring.mmp:5"; k_callpath = [] }

let test_threshold_exactness () =
  let th = Diff.default_thresholds in
  let base =
    hand_summary ~label:"base" [ (hand_key, vstat ~slope:(-1.0) ~time:1.0 ()) ]
  in
  let with_slope s =
    hand_summary ~label:"cand" [ (hand_key, vstat ~slope:s ~time:1.0 ()) ]
  in
  (* a delta of exactly slope_tol is benign (strict >)... *)
  let at =
    Diff.compare_summaries ~base ~cand:(with_slope (-1.0 +. th.Diff.slope_tol)) ()
  in
  check_int "delta == slope_tol is unchanged" 0 at.Diff.n_regressed;
  (* ...one epsilon past it regresses *)
  let past =
    Diff.compare_summaries ~base
      ~cand:(with_slope (-1.0 +. th.Diff.slope_tol +. 1e-9))
      ()
  in
  check_int "delta just past slope_tol regresses" 1 past.Diff.n_regressed;
  (* same strictness on the time axis *)
  let with_time t =
    hand_summary ~label:"cand" [ (hand_key, vstat ~slope:(-1.0) ~time:t ()) ]
  in
  let at =
    Diff.compare_summaries ~base ~cand:(with_time (1.0 +. th.Diff.time_tol)) ()
  in
  check_int "growth == time_tol is unchanged" 0 at.Diff.n_regressed;
  let past =
    Diff.compare_summaries ~base
      ~cand:(with_time (1.0 +. th.Diff.time_tol +. 1e-6))
      ()
  in
  check_int "growth past time_tol regresses" 1 past.Diff.n_regressed

let test_min_fraction_skips () =
  let big = { Diff.k_label = "big"; k_loc = "x:1"; k_callpath = [] } in
  let small = { Diff.k_label = "small"; k_loc = "x:2"; k_callpath = [] } in
  let mk label small_time =
    hand_summary ~label
      [
        (big, { (vstat ~slope:(-1.0) ~time:100.0 ()) with Diff.vs_fraction = 0.999 });
        ( small,
          { (vstat ~slope:(-1.0) ~time:small_time ()) with Diff.vs_fraction = 0.001 } );
      ]
  in
  (* the small vertex triples, but sits under the noise floor on both sides *)
  let d = Diff.compare_summaries ~base:(mk "b" 0.01) ~cand:(mk "c" 0.03) () in
  check_int "noise-floor vertex skipped" 1 d.Diff.n_skipped;
  check_int "no regressions from noise" 0 d.Diff.n_regressed

(* --- history ledger --- *)

let temp_ledger () =
  let path = Filename.temp_file "scalana_history" ".jsonl" in
  Sys.remove path;
  path

let entry ?(time = 1_700_000_000.0) ?(commit = "abc1234") ?(label = "run")
    ?(slopes = [ ("work @ring.mmp:5", -1.0) ]) () =
  {
    History.h_time = time;
    h_commit = commit;
    h_label = label;
    h_program = "ring";
    h_scales = scales;
    h_slopes = slopes;
    h_waits = [ ("sampled", 0.25) ];
    h_degraded = false;
    h_coverage = 1.0;
    h_detect_seconds = 0.01;
  }

let test_history_round_trip () =
  let path = temp_ledger () in
  History.append ~path (entry ~label:"first" ());
  History.append ~path (entry ~label:"second" ~time:1_700_000_060.0 ());
  let r = History.load ~path in
  check_int "nothing dropped" 0 r.History.dropped;
  check_int "two entries" 2 (List.length r.History.entries);
  (match r.History.entries with
  | [ a; b ] ->
      check_string "order preserved" "first" a.History.h_label;
      check_string "second row" "second" b.History.h_label;
      check_string "commit round-trips" "abc1234" a.History.h_commit;
      check_float "time round-trips" 1_700_000_000.0 a.History.h_time;
      Alcotest.(check (list int)) "scales round-trip" scales a.History.h_scales;
      close "slope round-trips" (-1.0) (List.assoc "work @ring.mmp:5" a.History.h_slopes)
  | _ -> Alcotest.fail "unexpected entry count");
  Sys.remove path

let test_history_salvage_truncated () =
  let path = temp_ledger () in
  History.append ~path (entry ~label:"kept" ());
  History.append ~path (entry ~label:"torn" ~time:1_700_000_060.0 ());
  (* tear the last line in half: a crashed appender *)
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let cut = String.length contents - String.length contents / 4 in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub contents 0 cut));
  let r = History.load ~path in
  check_int "torn line dropped" 1 r.History.dropped;
  check_int "prior rows salvaged" 1 (List.length r.History.entries);
  check_string "surviving row intact" "kept"
    (List.hd r.History.entries).History.h_label;
  (* appending after salvage keeps working: the new row loads, the torn
     one stays dropped *)
  History.append ~path (entry ~label:"after" ~time:1_700_000_120.0 ());
  let r = History.load ~path in
  check_int "still one dropped" 1 r.History.dropped;
  check_int "salvage plus append" 2 (List.length r.History.entries);
  Sys.remove path

let test_history_salvage_corrupt_crc () =
  let path = temp_ledger () in
  History.append ~path (entry ~label:"a" ());
  History.append ~path (entry ~label:"b" ~time:1_700_000_060.0 ());
  History.append ~path (entry ~label:"c" ~time:1_700_000_120.0 ());
  (* flip a payload byte of the middle line; its CRC no longer matches *)
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  let corrupt l = Str.replace_first (Str.regexp_string "\"b\"") "\"B\"" l in
  Out_channel.with_open_bin path (fun oc ->
      List.iteri
        (fun i l ->
          Out_channel.output_string oc (if i = 1 then corrupt l else l);
          Out_channel.output_char oc '\n')
        lines);
  let r = History.load ~path in
  check_int "corrupt line dropped" 1 r.History.dropped;
  Alcotest.(check (list string))
    "neighbours survive" [ "a"; "c" ]
    (List.map (fun e -> e.History.h_label) r.History.entries);
  Sys.remove path

let test_history_line_errors () =
  (match History.entry_of_line "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line accepted");
  (match History.entry_of_line "{\"label\":\"x\"}" with
  | Error e ->
      check_bool "missing crc reported" true
        (try
           ignore (Str.search_forward (Str.regexp_string "crc") e 0);
           true
         with Not_found -> false)
  | Ok _ -> Alcotest.fail "crc-less line accepted");
  (* a genuine line round-trips through the public parser *)
  let path = temp_ledger () in
  History.append ~path (entry ());
  let line =
    In_channel.with_open_bin path In_channel.input_all |> String.trim
  in
  Sys.remove path;
  match History.entry_of_line line with
  | Ok e -> check_string "parsed label" "run" e.History.h_label
  | Error e -> Alcotest.failf "genuine line rejected: %s" e

let test_trend_queries () =
  let entries =
    [
      entry ~slopes:[ ("a", -1.0); ("b", 0.1) ] ();
      entry ~slopes:[ ("a", -0.8) ] ~time:1_700_000_060.0 ();
      entry ~slopes:[ ("a", -0.4); ("b", 0.3) ] ~time:1_700_000_120.0 ();
    ]
  in
  Alcotest.(check (list string))
    "tracked union sorted" [ "a"; "b" ]
    (History.tracked_vertices entries);
  (match History.slope_trend entries ~key:"b" with
  | [ Some _; None; Some _ ] -> ()
  | t -> Alcotest.failf "unexpected trend shape (%d points)" (List.length t));
  let spark = History.sparkline (History.slope_trend entries ~key:"b") in
  check_int "one char per entry" 3 (String.length spark);
  check_bool "missing point is a space" true (spark.[1] = ' ');
  check_string "flat series renders mid-ramp" "=="
    (History.sparkline [ Some 1.0; Some 1.0 ]);
  check_string "empty series" "" (History.sparkline []);
  Alcotest.(check int)
    "last n clips from the front" 2
    (List.length (History.last ~n:2 entries))

let test_history_entry_from_pipeline () =
  let pipe = pipeline () in
  let e =
    Scalana.Pipeline.history_entry ~time:1_700_000_000.0 ~commit:"deadbee"
      ~label:"ring run" pipe
  in
  check_string "program recorded" "ring" e.History.h_program;
  Alcotest.(check (list int)) "scales recorded" scales e.History.h_scales;
  check_bool "clean session" false e.History.h_degraded;
  check_float "coverage full" 1.0 e.History.h_coverage;
  check_bool "waits recorded" true (e.History.h_waits <> []);
  (* the row survives a ledger round trip byte-exactly *)
  let path = temp_ledger () in
  History.append ~path e;
  let r = History.load ~path in
  check_int "pipeline row loads" 1 (List.length r.History.entries);
  check_string "label survives" "ring run"
    (List.hd r.History.entries).History.h_label;
  Sys.remove path

(* --- report surfacing --- *)

let test_trend_section_rendering () =
  let has needle s =
    try
      ignore (Str.search_forward (Str.regexp_string needle) s 0);
      true
    with Not_found -> false
  in
  let history =
    [
      entry ~commit:"aaa1111" ();
      entry ~commit:"bbb2222" ~slopes:[ ("work @ring.mmp:5", -0.5) ]
        ~time:1_700_000_060.0 ();
    ]
  in
  let text = Fmt.str "%a" Report.pp_trend history in
  check_bool "trend header" true (has "trend (history ledger" text);
  check_bool "commit range shown" true (has "aaa1111 .. bbb2222" text);
  check_bool "vertex key shown" true (has "work @ring.mmp:5" text);
  check_bool "empty history renders nothing" true
    (String.equal "" (Fmt.str "%a" Report.pp_trend []));
  (* flags off: reports stay byte-identical *)
  let prog () = ring_program ~niter:4 () in
  let plain = Scalana.Pipeline.run ~scales (prog ()) in
  let with_history =
    Scalana.Pipeline.detect ~history plain.Scalana.Pipeline.static
      plain.Scalana.Pipeline.runs
  in
  check_bool "report gains the section" true
    (has "trend (history ledger" with_history.Scalana.Pipeline.report);
  check_bool "plain report has none" false
    (has "trend (history ledger" plain.Scalana.Pipeline.report);
  let html = Scalana.Htmlreport.render with_history in
  check_bool "html trend section" true (has "Trend (history ledger" html);
  check_bool "plain html has none" false
    (has "Trend (history ledger" (Scalana.Htmlreport.render plain))

(* --- seeded determinism property --- *)

let prop_same_seed_diff_unchanged =
  Prop.test ~count:4 "same-seed sessions diff all-unchanged"
    (Prop.pair (Prop.int_range 4 8) (Prop.int_range 1_000_000 3_000_000))
    (fun (niter, work) ->
      let summarize label =
        Scalana.Pipeline.diff_summary ~label
          (Scalana.Pipeline.run ~scales:[ 4; 8 ]
             (ring_program ~niter ~work ()))
      in
      let d =
        Diff.compare_summaries ~base:(summarize "base") ~cand:(summarize "cand")
          ()
      in
      (not (Diff.has_regressions d))
      && d.Diff.n_improved = 0 && d.Diff.n_new = 0 && d.Diff.n_gone = 0
      && not d.Diff.degraded)

let () =
  Alcotest.run "diff"
    [
      ( "align",
        [
          Alcotest.test_case "self diff clean" `Quick test_self_diff_clean;
          Alcotest.test_case "time regression" `Quick
            test_time_regression_detected;
          Alcotest.test_case "improvement" `Quick test_improvement_detected;
          Alcotest.test_case "one-sided vertices" `Quick test_one_sided_vertices;
          Alcotest.test_case "degraded input" `Quick
            test_degraded_input_dominates;
        ] );
      ( "thresholds",
        [
          Alcotest.test_case "boundary exactness" `Quick
            test_threshold_exactness;
          Alcotest.test_case "noise floor" `Quick test_min_fraction_skips;
        ] );
      ( "history",
        [
          Alcotest.test_case "round trip" `Quick test_history_round_trip;
          Alcotest.test_case "salvage truncated tail" `Quick
            test_history_salvage_truncated;
          Alcotest.test_case "salvage corrupt crc" `Quick
            test_history_salvage_corrupt_crc;
          Alcotest.test_case "line errors" `Quick test_history_line_errors;
          Alcotest.test_case "trend queries" `Quick test_trend_queries;
          Alcotest.test_case "pipeline entry" `Quick
            test_history_entry_from_pipeline;
        ] );
      ( "report",
        [
          Alcotest.test_case "trend section" `Quick
            test_trend_section_rendering;
        ] );
      ("prop", [ prop_same_seed_diff_unchanged ]);
    ]
