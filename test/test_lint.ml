(* Tests for the static scaling-loss linter: one synthetic program per
   rule, plus the acceptance pins on the bundled apps — the NPB-CG
   transpose exchange is flagged, NPB-EP (and every other shipped app)
   is clean. *)

open Scalana_mlang
open Testutil

let build f =
  let b = Builder.create ~file:"t.mmp" ~name:"t" () in
  f b;
  Builder.program b

let rules fs = List.map (fun (f : Lint.finding) -> f.Lint.rule) fs

let check_rules msg expected prog =
  let fs = Lint.run prog in
  Alcotest.(check (list string))
    msg
    (List.map Lint.rule_name expected)
    (List.map Lint.rule_name (rules fs))

(* --- one program per rule --- *)

let test_nprocs_volume () =
  let open Expr.Infix in
  check_rules "allreduce of 8*np bytes" [ Lint.Nprocs_volume ]
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [ Builder.allreduce b ~bytes:(i 8 * np) ])));
  (* shrinking partitions are the scalable idiom — not flagged *)
  check_rules "n/np partition is clean" []
    (build (fun b ->
         Builder.param b "n" 65536;
         Builder.func b "main" (fun () ->
             [ Builder.allreduce b ~bytes:(p "n" / np) ])))

let test_root_centralized_reduce_bcast () =
  let open Expr.Infix in
  check_rules "reduce then bcast from the same root"
    [ Lint.Root_centralized ]
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.reduce b ~root:(i 0) ~bytes:(i 8) ();
               Builder.bcast b ~root:(i 0) ~bytes:(i 8) ();
             ])))

let test_root_centralized_fan_loop () =
  let open Expr.Infix in
  let prog =
    build (fun b ->
        Builder.func b "main" (fun () ->
            [
              Builder.branch b
                ~cond:(rank = i 0)
                ~else_:(fun () ->
                  [ Builder.send b ~dest:(i 0) ~bytes:(i 8) () ])
                (fun () ->
                  [
                    (* np-1 receives, one per non-root sender, so the
                       channel audit sees a balanced matching *)
                    Builder.loop b ~var:"r" ~count:(np - i 1) (fun () ->
                        [ Builder.recv b ~src:(v "r" + i 1) ~bytes:(i 8) () ]);
                  ]);
            ]))
  in
  let fs = Lint.run prog in
  check_rules "rank-0 fan-in flagged once" [ Lint.Root_centralized ] prog;
  (* the O(P) loop inside the root branch must not double-report as a
     p2p-collective *)
  check_int "no p2p-collective duplicate" 0
    (List.length (Lint.by_rule fs Lint.P2p_collective))

let test_p2p_collective () =
  let open Expr.Infix in
  check_rules "log2(np)-trip sendrecv loop" [ Lint.P2p_collective ]
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.loop b ~var:"k" ~count:(log2 np) (fun () ->
                   [
                     Builder.sendrecv b
                       ~dest:(rank lxor (i 1 lsl v "k"))
                       ~sbytes:(i 1024) ~rbytes:(i 1024) ();
                   ]);
             ])))

let test_loop_invariant_comm () =
  let open Expr.Infix in
  check_rules "identical send every iteration" [ Lint.Loop_invariant_comm ]
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.loop b ~var:"t" ~count:(i 10) (fun () ->
                   [ Builder.send b ~dest:(i 1) ~bytes:(i 64) () ]);
             ])));
  (* rank-dependent peer varies per process: not invariant *)
  check_rules "rank-dependent send is clean" []
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.loop b ~var:"t" ~count:(i 10) (fun () ->
                   [ Builder.send b ~dest:(rank + i 1) ~bytes:(i 64) () ]);
             ])))

let test_unwaited_request () =
  let open Expr.Infix in
  check_rules "isend never waited" [ Lint.Unwaited_request ]
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [ Builder.isend b ~dest:(i 0) ~bytes:(i 8) ~req:"r0" () ])));
  check_rules "waited isend is clean" []
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.isend b ~dest:(i 0) ~bytes:(i 8) ~req:"r0" ();
               Builder.wait b ~req:"r0";
             ])))

let test_duplicate_waitall () =
  let open Expr.Infix in
  check_rules "request listed twice" [ Lint.Duplicate_waitall ]
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               (* ring neighbour, so every posted receive has a sender
                  and the channel audit stays quiet *)
               Builder.isend b
                 ~dest:((rank + i 1) % np)
                 ~bytes:(i 8) ~req:"r0" ();
               Builder.irecv b ~bytes:(i 8) ~req:"r1" ();
               Builder.waitall b ~reqs:[ "r0"; "r1"; "r0" ];
             ])))

(* --- the interprocedural channel-audit rules --- *)

let test_send_recv_mismatch () =
  let open Expr.Infix in
  (* rank 1 posts two receives for rank 0's single send: the per-rank
     concrete walk sees 1 message in, 2 receives posted *)
  check_rules "double receive for a single send" [ Lint.Send_recv_mismatch ]
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.branch b
                 ~cond:(rank = i 0)
                 ~else_:(fun () ->
                   [
                     Builder.branch b
                       ~cond:(rank = i 1)
                       (fun () ->
                         [
                           Builder.recv b ~src:(i 0) ~bytes:(i 8) ();
                           Builder.recv b ~src:(i 0) ~bytes:(i 8) ();
                         ]);
                   ])
                 (fun () -> [ Builder.send b ~dest:(i 1) ~bytes:(i 8) () ]);
             ])));
  (* a balanced ring is clean *)
  check_rules "balanced ring is clean" []
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.sendrecv b
                 ~dest:((rank + i 1) % np)
                 ~src:((rank + np - i 1) % np)
                 ~sbytes:(i 8) ~rbytes:(i 8) ();
             ])))

let test_rank_tag_mismatch () =
  let open Expr.Infix in
  (* the totals balance (one send, one receive) but the receiver's tag
     never matches the sender's: the exchange hangs on tag routing *)
  check_rules "diverging tag expressions" [ Lint.Rank_tag_mismatch ]
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.branch b
                 ~cond:(rank = i 0)
                 ~else_:(fun () ->
                   [
                     Builder.branch b
                       ~cond:(rank = i 1)
                       (fun () ->
                         [
                           Builder.recv b ~src:(i 0) ~tag:(i 2) ~bytes:(i 8) ();
                         ]);
                   ])
                 (fun () ->
                   [ Builder.send b ~dest:(i 1) ~tag:(i 1) ~bytes:(i 8) () ]);
             ])));
  (* a wildcard-tag receive accepts any tag: clean *)
  check_rules "wildcard receive matches" []
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.branch b
                 ~cond:(rank = i 0)
                 ~else_:(fun () ->
                   [
                     Builder.branch b
                       ~cond:(rank = i 1)
                       (fun () -> [ Builder.recv b ~bytes:(i 8) () ]);
                   ])
                 (fun () ->
                   [ Builder.send b ~dest:(i 1) ~tag:(i 1) ~bytes:(i 8) () ]);
             ])))

let test_collective_divergence () =
  let open Expr.Infix in
  (* only rank 0 enters the allreduce: the other ranks never arrive *)
  check_rules "collective under a rank branch" [ Lint.Collective_divergence ]
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.branch b
                 ~cond:(rank = i 0)
                 (fun () -> [ Builder.allreduce b ~bytes:(i 8) ]);
             ])));
  (* every rank executes it: lockstep, clean *)
  check_rules "lockstep collective is clean" []
    (build (fun b ->
         Builder.func b "main" (fun () ->
             [ Builder.allreduce b ~bytes:(i 8) ])))

(* --- report plumbing --- *)

let test_rule_names_distinct () =
  let names = List.map Lint.rule_name Lint.all_rules in
  check_int "nine rules" 9 (List.length names);
  check_int "names distinct" 9
    (List.length (List.sort_uniq compare names))

let test_report_renders () =
  let open Expr.Infix in
  let fs =
    Lint.run
      (build (fun b ->
           Builder.func b "main" (fun () ->
               [ Builder.allreduce b ~bytes:(i 8 * np) ])))
  in
  let s = Fmt.str "%a" Lint.pp_report fs in
  check_bool "mentions rule" true
    (try
       ignore (Str.search_forward (Str.regexp_string "nprocs-volume") s 0);
       true
     with Not_found -> false);
  check_bool "empty report says so" true
    (let s = Fmt.str "%a" Lint.pp_report [] in
     try
       ignore (Str.search_forward (Str.regexp_string "no findings") s 0);
       true
     with Not_found -> false)

(* --- acceptance pins on the bundled apps --- *)

let test_cg_flagged_ep_clean () =
  let cg = (Scalana_apps.Registry.find "cg").make () in
  let fs = Lint.run cg in
  check_bool "cg transpose exchange flagged" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.rule = Lint.P2p_collective && f.Lint.func = "conj_grad")
       fs);
  let ep = (Scalana_apps.Registry.find "ep").make () in
  check_int "ep has no findings" 0 (List.length (Lint.run ep))

let test_no_false_positives_across_registry () =
  (* every shipped app except cg models scalable communication; the
     linter must stay quiet on all of them *)
  List.iter
    (fun name ->
      if name <> "cg" then
        check_int (name ^ " clean") 0
          (List.length (Lint.run ((Scalana_apps.Registry.find name).make ()))))
    Scalana_apps.Registry.names

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "nprocs volume" `Quick test_nprocs_volume;
          Alcotest.test_case "reduce+bcast" `Quick
            test_root_centralized_reduce_bcast;
          Alcotest.test_case "rank-0 fan loop" `Quick
            test_root_centralized_fan_loop;
          Alcotest.test_case "p2p collective" `Quick test_p2p_collective;
          Alcotest.test_case "loop-invariant comm" `Quick
            test_loop_invariant_comm;
          Alcotest.test_case "unwaited request" `Quick test_unwaited_request;
          Alcotest.test_case "duplicate waitall" `Quick test_duplicate_waitall;
        ] );
      ( "channel audit",
        [
          Alcotest.test_case "send/recv mismatch" `Quick
            test_send_recv_mismatch;
          Alcotest.test_case "rank-tag mismatch" `Quick test_rank_tag_mismatch;
          Alcotest.test_case "collective divergence" `Quick
            test_collective_divergence;
        ] );
      ( "report",
        [
          Alcotest.test_case "rule names" `Quick test_rule_names_distinct;
          Alcotest.test_case "renders" `Quick test_report_renders;
        ] );
      ( "apps",
        [
          Alcotest.test_case "cg flagged, ep clean" `Quick
            test_cg_flagged_ep_clean;
          Alcotest.test_case "registry stays quiet" `Quick
            test_no_false_positives_across_registry;
        ] );
    ]
