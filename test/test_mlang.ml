(* Tests for the MiniMPI language substrate: expressions, lexer, parser,
   builder, validator, pretty-printer. *)

open Scalana_mlang
open Testutil

(* --- Expr --- *)

let env ?(rank = 3) ?(nprocs = 8) ?(params = [ ("n", 100) ]) ?(vars = []) () =
  Expr.env ~rank ~nprocs ~params ~vars

let test_eval_basic () =
  let e = env () in
  check_int "int" 42 (Expr.eval e (Int 42));
  check_int "rank" 3 (Expr.eval e Rank);
  check_int "np" 8 (Expr.eval e Nprocs);
  check_int "param" 100 (Expr.eval e (Param "n"));
  check_int "add" 7 (Expr.eval e (Bin (Add, Int 3, Int 4)));
  check_int "mul" 12 (Expr.eval e (Bin (Mul, Int 3, Int 4)));
  check_int "div" 3 (Expr.eval e (Bin (Div, Int 13, Int 4)));
  check_int "mod" 1 (Expr.eval e (Bin (Mod, Int 13, Int 4)));
  check_int "min" 3 (Expr.eval e (Bin (Min, Int 3, Int 4)));
  check_int "max" 4 (Expr.eval e (Bin (Max, Int 3, Int 4)));
  check_int "shl" 48 (Expr.eval e (Bin (Shl, Int 3, Int 4)));
  check_int "shr" 3 (Expr.eval e (Bin (Shr, Int 13, Int 2)));
  check_int "neg" (-5) (Expr.eval e (Neg (Int 5)));
  check_int "not0" 1 (Expr.eval e (Not (Int 0)));
  check_int "not1" 0 (Expr.eval e (Not (Int 7)))

let test_eval_bool_ops () =
  let e = env () in
  check_int "lt" 1 (Expr.eval e (Bin (Lt, Int 1, Int 2)));
  check_int "le" 1 (Expr.eval e (Bin (Le, Int 2, Int 2)));
  check_int "gt" 0 (Expr.eval e (Bin (Gt, Int 1, Int 2)));
  check_int "ge" 0 (Expr.eval e (Bin (Ge, Int 1, Int 2)));
  check_int "eq" 1 (Expr.eval e (Bin (Eq, Int 2, Int 2)));
  check_int "ne" 1 (Expr.eval e (Bin (Ne, Int 1, Int 2)));
  check_int "and" 0 (Expr.eval e (Bin (And, Int 1, Int 0)));
  check_int "or" 1 (Expr.eval e (Bin (Or, Int 1, Int 0)));
  check_int "xor" 6 (Expr.eval e (Bin (Xor, Int 5, Int 3)))

let test_eval_errors () =
  let e = env () in
  Alcotest.check_raises "div0" (Expr.Eval_error "division by zero") (fun () ->
      ignore (Expr.eval e (Bin (Div, Int 1, Int 0))));
  Alcotest.check_raises "mod0" (Expr.Eval_error "modulo by zero") (fun () ->
      ignore (Expr.eval e (Bin (Mod, Int 1, Int 0))));
  Alcotest.check_raises "unbound var" (Expr.Eval_error "unbound variable \"y\"")
    (fun () -> ignore (Expr.eval e (Var "y")));
  Alcotest.check_raises "unbound param"
    (Expr.Eval_error "unbound parameter \"zz\"") (fun () ->
      ignore (Expr.eval e (Param "zz")))

let test_log2_isqrt () =
  let e = env () in
  check_int "log2 1" 0 (Expr.eval e (Log2 (Int 1)));
  check_int "log2 2" 1 (Expr.eval e (Log2 (Int 2)));
  check_int "log2 1024" 10 (Expr.eval e (Log2 (Int 1024)));
  check_int "log2 1023" 9 (Expr.eval e (Log2 (Int 1023)));
  check_int "log2 0" 0 (Expr.eval e (Log2 (Int 0)));
  check_int "isqrt 0" 0 (Expr.eval e (Isqrt (Int 0)));
  check_int "isqrt 1" 1 (Expr.eval e (Isqrt (Int 1)));
  check_int "isqrt 15" 3 (Expr.eval e (Isqrt (Int 15)));
  check_int "isqrt 16" 4 (Expr.eval e (Isqrt (Int 16)));
  check_int "isqrt 17" 4 (Expr.eval e (Isqrt (Int 17)))

let isqrt_prop =
  qtest "isqrt r*r <= v < (r+1)^2" QCheck2.Gen.(int_bound 10_000_000)
    (fun v ->
      let e = env () in
      let r = Expr.eval e (Isqrt (Int v)) in
      (r * r <= v && (r + 1) * (r + 1) > v) || v = 0)

let log2_prop =
  qtest "log2 2^k = k" QCheck2.Gen.(int_bound 60) (fun k ->
      let e = env () in
      Expr.eval e (Log2 (Int (1 lsl k))) = k)

let test_free_vars_params () =
  let open Expr in
  let e = Bin (Add, Var "i", Bin (Mul, Param "n", Var "j")) in
  Alcotest.(check (slist string compare))
    "free vars" [ "i"; "j" ] (free_vars e);
  Alcotest.(check (list string)) "params" [ "n" ] (params e);
  check_bool "static" false (is_static e);
  check_bool "static const" true (is_static (Bin (Add, Param "n", Nprocs)));
  check_bool "rank dep" true (depends_on_rank (Bin (Mod, Rank, Int 2)));
  check_bool "rank indep" false (depends_on_rank (Param "n"))

(* expression generator without vars, for round-trip tests *)
let expr_gen : Expr.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let binops =
    [
      Expr.Add; Sub; Mul; Div; Mod; Min; Max; Shl; Shr; Lt; Le; Gt; Ge; Eq; Ne;
      And; Or; Xor;
    ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map (fun i -> Expr.Int i) (int_bound 1000);
               return Expr.Rank;
               return Expr.Nprocs;
               return (Expr.Param "n");
             ]
         else
           oneof
             [
               map (fun i -> Expr.Int i) (int_bound 1000);
               map2
                 (fun op (a, b) -> Expr.Bin (op, a, b))
                 (oneofl binops)
                 (pair (self (n / 2)) (self (n / 2)));
               map (fun a -> Expr.Neg a) (self (n - 1));
               map (fun a -> Expr.Not a) (self (n - 1));
               map (fun a -> Expr.Log2 a) (self (n - 1));
               map (fun a -> Expr.Isqrt a) (self (n - 1));
             ])

let expr_roundtrip =
  qtest ~count:300 "expr pp/parse round trip" expr_gen (fun e ->
      let src =
        Printf.sprintf
          "program \"t\"\nparam n = 3\nfunc main() {\n  comp flops=%s mem=0 ints=0 locality=0.9;\n}\n"
          (Expr.to_string e)
      in
      let prog = Parser.parse src in
      match (Ast.main_func prog).fbody with
      | [ { node = Ast.Comp w; _ } ] -> Expr.equal e w.flops
      | _ -> false)

let expr_eval_stable =
  qtest ~count:300 "pp/parse preserves evaluation" expr_gen (fun e ->
      let src =
        Printf.sprintf
          "program \"t\"\nparam n = 7\nfunc main() {\n  comp flops=%s mem=0 ints=0 locality=0.9;\n}\n"
          (Expr.to_string e)
      in
      let prog = Parser.parse src in
      match (Ast.main_func prog).fbody with
      | [ { node = Ast.Comp w; _ } ] ->
          let ev x =
            try Some (Expr.eval (env ~params:[ ("n", 7) ] ()) x)
            with Expr.Eval_error _ -> None
          in
          ev e = ev w.flops
      | _ -> false)


let is_static_means_rank_invariant =
  qtest ~count:300 "is_static implies rank-invariant value" expr_gen (fun e ->
      (not (Expr.is_static e))
      ||
      let ev rank =
        try
          Some
            (Expr.eval
               (Expr.env ~rank ~nprocs:16 ~params:[ ("n", 5) ] ~vars:[])
               e)
        with Expr.Eval_error _ -> None
      in
      ev 0 = ev 7 && ev 7 = ev 15)

let depends_on_rank_sound =
  qtest ~count:300 "rank-independent exprs evaluate equally on all ranks"
    expr_gen (fun e ->
      Expr.depends_on_rank e
      ||
      let ev rank =
        try
          Some
            (Expr.eval
               (Expr.env ~rank ~nprocs:16 ~params:[ ("n", 5) ] ~vars:[])
               e)
        with Expr.Eval_error _ -> None
      in
      ev 1 = ev 13)

(* --- Lexer --- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "foo 42 3.5 \"hi\" ( ) { } , ; = $ + - * / % ^ !" in
  let kinds = List.map fst toks in
  Alcotest.(check int) "count" 20 (List.length kinds);
  (match kinds with
  | Lexer.IDENT "foo" :: Lexer.INT 42 :: Lexer.FLOAT f :: Lexer.STRING "hi" :: _
    ->
      check_float "float" 3.5 f
  | _ -> Alcotest.fail "unexpected token stream");
  match List.rev kinds with
  | Lexer.EOF :: _ -> ()
  | _ -> Alcotest.fail "missing EOF"

let test_lexer_operators () =
  let toks = Lexer.tokenize "<= >= == != && || << >> < >" |> List.map fst in
  Alcotest.(check bool) "ops" true
    (toks
    = [
        Lexer.LE; Lexer.GE; Lexer.EQEQ; Lexer.NE; Lexer.ANDAND; Lexer.OROR;
        Lexer.SHL; Lexer.SHR; Lexer.LT; Lexer.GT; Lexer.EOF;
      ])

let test_lexer_comments_lines () =
  let toks = Lexer.tokenize "a // comment\nb # another\nc" in
  (match toks with
  | [ (Lexer.IDENT "a", 1); (Lexer.IDENT "b", 2); (Lexer.IDENT "c", 3);
      (Lexer.EOF, 3) ] ->
      ()
  | _ -> Alcotest.fail "comment/line tracking wrong");
  Alcotest.check_raises "unterminated string"
    (Lexer.Lex_error { line = 1; msg = "unterminated string literal" })
    (fun () -> ignore (Lexer.tokenize "\"abc"))

let test_lexer_bad_char () =
  match Lexer.tokenize "a @ b" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexer.Lex_error { line = 1; _ } -> ()

(* --- Parser --- *)

let sample_source =
  {|program "sample"
param n = 64
param niter = 5

func work(x) {
  comp label "kernel" flops=$n * x mem=$n ints=10 locality=0.8;
}

func main() {
  let half = np / 2;
  loop it = $niter label "outer" {
    call work(x=it + 1);
    if rank < half {
      isend dest=rank + half tag=3 bytes=1024 req=s0;
      wait req=s0;
    } else {
      recv src=any tag=any bytes=1024;
    }
    allreduce bytes=8;
  }
  barrier;
}
|}

let test_parse_sample () =
  let prog = Parser.parse ~file:"sample.mmp" sample_source in
  check_string "name" "sample" prog.pname;
  check_int "params" 2 (List.length prog.params);
  check_int "funcs" 2 (List.length prog.funcs);
  (match Validate.run prog with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "validate: %s" (Validate.error_to_string (List.hd es)));
  let main = Ast.main_func prog in
  check_int "main stmts" 3 (List.length main.fbody);
  (* line numbers come from the source *)
  match main.fbody with
  | [ { node = Ast.Let _; loc }; { node = Ast.Loop l; _ }; { node = Ast.Mpi Ast.Barrier; _ } ]
    ->
      check_int "let line" 10 (Loc.line loc);
      check_int "loop body" 3 (List.length l.body)
  | _ -> Alcotest.fail "unexpected main body"

let test_parse_errors () =
  let bad msgs src =
    match Parser.parse src with
    | _ -> Alcotest.failf "expected parse error (%s)" msgs
    | exception Parser.Parse_error _ -> ()
  in
  bad "no header" "func main() {}";
  bad "missing semi" "program \"x\"\nfunc main() { barrier }";
  bad "unknown stmt" "program \"x\"\nfunc main() { frobnicate; }";
  bad "bad field order" "program \"x\"\nfunc main() { send tag=1 dest=0 bytes=8; }";
  bad "unclosed brace" "program \"x\"\nfunc main() { barrier;"

let test_parse_wildcards () =
  let prog =
    Parser.parse
      "program \"w\"\nfunc main() { recv src=any tag=any bytes=4; }"
  in
  match (Ast.main_func prog).fbody with
  | [ { node = Ast.Mpi (Ast.Recv { src = Ast.Any_source; tag = Ast.Any_tag; _ }); _ } ]
    ->
      ()
  | _ -> Alcotest.fail "wildcards not parsed"

(* --- Pretty / round trip --- *)

let test_render_parse_fixpoint () =
  List.iter
    (fun prog ->
      let r1 = Pretty.render prog in
      let prog2 = Parser.parse ~file:prog.Ast.file r1 in
      let r2 = Pretty.render prog2 in
      check_string ("fixpoint " ^ prog.Ast.pname) r1 r2)
    [ ring_program (); fig3_program (); recursion_program () ]

let test_registry_roundtrip () =
  List.iter
    (fun name ->
      let entry = Scalana_apps.Registry.find name in
      let prog = entry.make () in
      let r1 = Pretty.render prog in
      let prog2 = Parser.parse ~file:prog.Ast.file r1 in
      let r2 = Pretty.render prog2 in
      check_string ("fixpoint " ^ name) r1 r2;
      match Validate.run prog2 with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s reparsed invalid: %s" name
            (Validate.error_to_string (List.hd es)))
    Scalana_apps.Registry.names

let test_snippet_alignment () =
  let prog = fig3_program () in
  let lines = Array.of_list (Pretty.render_lines prog) in
  Ast.iter_program
    (fun s ->
      let line = Loc.line s.Ast.loc in
      let text = lines.(line - 1) in
      let keyword =
        match s.Ast.node with
        | Ast.Comp _ -> "comp"
        | Ast.Loop _ -> "loop"
        | Ast.Branch _ -> "if"
        | Ast.Call _ -> "call"
        | Ast.Icall _ -> "icall"
        | Ast.Let _ -> "let"
        | Ast.Mpi c -> (
            match c with
            | Ast.Send _ -> "send"
            | Ast.Recv _ -> "recv"
            | _ -> String.sub (String.lowercase_ascii (Ast.mpi_name c)) 4 3)
      in
      if
        not
          (String.length text >= String.length keyword
          && String.trim text |> fun t ->
             String.length t >= String.length keyword
             && String.sub t 0 (String.length keyword) = keyword)
      then
        Alcotest.failf "line %d %S does not start with %S" line text keyword)
    prog


let test_loc_basics () =
  let a = Loc.v ~file:"a.mmp" ~line:3 and b = Loc.v ~file:"a.mmp" ~line:4 in
  check_bool "equal self" true (Loc.equal a a);
  check_bool "not equal" false (Loc.equal a b);
  check_bool "compare lines" true (Loc.compare a b < 0);
  check_bool "compare files" true
    (Loc.compare (Loc.v ~file:"a" ~line:9) (Loc.v ~file:"b" ~line:1) < 0);
  check_int "hash stable" (Loc.hash a) (Loc.hash (Loc.v ~file:"a.mmp" ~line:3));
  check_string "to_string" "a.mmp:3" (Loc.to_string a);
  check_string "none" "<builtin>:0" (Loc.to_string Loc.none)

let test_parse_intrinsics () =
  let prog =
    Parser.parse
      "program \"x\"\nparam n = -5\nfunc main() { comp flops=min(log2(np), isqrt($n)) mem=max(1, 2) ints=0 locality=0.5; }"
  in
  Alcotest.(check (list (pair string int))) "negative param" [ ("n", -5) ]
    prog.params;
  match (Ast.main_func prog).fbody with
  | [ { node = Ast.Comp w; _ } ] -> (
      match w.flops with
      | Expr.Bin (Expr.Min, Expr.Log2 Expr.Nprocs, Expr.Isqrt (Expr.Param "n"))
        ->
          ()
      | other -> Alcotest.failf "unexpected expr %s" (Expr.to_string other))
  | _ -> Alcotest.fail "unexpected body"

let test_snippet_bounds () =
  let prog = fig3_program () in
  let lines = Pretty.render_lines prog in
  let n = List.length lines in
  check_bool "snippet at line 1" true
    (Pretty.snippet prog (Loc.v ~file:"fig3.mmp" ~line:1) <> []);
  check_bool "snippet past end empty" true
    (Pretty.snippet prog (Loc.v ~file:"fig3.mmp" ~line:(n + 50)) = []);
  check_bool "snippet line 0 empty" true
    (Pretty.snippet prog (Loc.v ~file:"fig3.mmp" ~line:0) = []);
  (* wide context clamps to the file *)
  check_bool "wide context" true
    (List.length (Pretty.snippet ~context:1000 prog (Loc.v ~file:"f" ~line:2))
    <= n)

(* --- Builder --- *)

let test_builder_lines_monotone () =
  let prog = fig3_program () in
  let last = ref 0 in
  Ast.iter_program
    (fun s ->
      let l = Loc.line s.Ast.loc in
      if l <= !last then Alcotest.failf "line %d not increasing" l;
      last := l)
    prog

let test_builder_params_order () =
  let b = Builder.create ~file:"t.mmp" ~name:"t" () in
  Builder.param b "a" 1;
  Builder.param b "b" 2;
  Builder.func b "main" (fun () -> []);
  let prog = Builder.program b in
  Alcotest.(check (list (pair string int)))
    "params" [ ("a", 1); ("b", 2) ] prog.params

(* --- Validate --- *)

let expect_invalid expected prog =
  match Validate.run prog with
  | Ok () -> Alcotest.failf "expected validation error ~ %S" expected
  | Error errs ->
      let found =
        List.exists
          (fun e ->
            let s = Validate.error_to_string e in
            let re = Str.regexp_string expected in
            try
              ignore (Str.search_forward re s 0);
              true
            with Not_found -> false)
          errs
      in
      if not found then
        Alcotest.failf "no error matching %S in: %s" expected
          (String.concat "; " (List.map Validate.error_to_string errs))

let build_prog f =
  let b = Builder.create ~file:"v.mmp" ~name:"v" () in
  f b;
  Builder.program b

let test_validate_errors () =
  let open Expr.Infix in
  expect_invalid "main function"
    (build_prog (fun b -> Builder.func b "not_main" (fun () -> [])));
  expect_invalid "undefined function"
    (build_prog (fun b ->
         Builder.func b "main" (fun () -> [ Builder.call b "ghost" ])));
  expect_invalid "unbound variable"
    (build_prog (fun b ->
         Builder.func b "main" (fun () ->
             [ Builder.comp b ~flops:(v "nope") ~mem:(i 0) () ])));
  expect_invalid "undeclared parameter"
    (build_prog (fun b ->
         Builder.func b "main" (fun () ->
             [ Builder.comp b ~flops:(p "nope") ~mem:(i 0) () ])));
  expect_invalid "never posted"
    (build_prog (fun b ->
         Builder.func b "main" (fun () -> [ Builder.wait b ~req:"r0" ])));
  expect_invalid "misses argument"
    (build_prog (fun b ->
         Builder.func b "f" ~params:[ "x" ] (fun () -> []);
         Builder.func b "main" (fun () -> [ Builder.call b "f" ])));
  expect_invalid "unknown argument"
    (build_prog (fun b ->
         Builder.func b "f" (fun () -> []);
         Builder.func b "main" (fun () ->
             [ Builder.call b "f" ~args:[ ("y", i 1) ] ])));
  expect_invalid "locality"
    (build_prog (fun b ->
         Builder.func b "main" (fun () ->
             [ Builder.comp b ~locality:1.5 ~flops:(i 1) ~mem:(i 1) () ])));
  expect_invalid "no targets"
    (build_prog (fun b ->
         Builder.func b "main" (fun () ->
             [ Builder.icall b ~selector:(i 0) [] ])))

let test_validate_request_discipline () =
  let open Expr.Infix in
  let isend b req = Builder.isend b ~dest:(i 0) ~bytes:(i 8) ~req () in
  expect_invalid "twice"
    (build_prog (fun b ->
         Builder.func b "main" (fun () ->
             [ isend b "r0"; Builder.waitall b ~reqs:[ "r0"; "r0" ] ])));
  expect_invalid "still pending"
    (build_prog (fun b ->
         Builder.func b "main" (fun () -> [ isend b "r0"; isend b "r0" ])));
  (* a handle left pending by one branch arm is still pending after it *)
  expect_invalid "still pending"
    (build_prog (fun b ->
         Builder.func b "main" (fun () ->
             [
               Builder.branch b ~cond:(rank = i 0) (fun () -> [ isend b "r0" ]);
               isend b "r0";
             ])));
  (* completion releases the handle for re-posting *)
  match
    Validate.run
      (build_prog (fun b ->
           Builder.func b "main" (fun () ->
               [
                 isend b "r0";
                 Builder.wait b ~req:"r0";
                 isend b "r0";
                 Builder.waitall b ~reqs:[ "r0" ];
               ])))
  with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "re-post after wait should validate: %s"
        (Validate.error_to_string (List.hd es))

let test_validate_ok () =
  List.iter
    (fun prog ->
      match Validate.run prog with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "unexpected error: %s"
            (Validate.error_to_string (List.hd es)))
    [ ring_program (); fig3_program (); recursion_program () ]

(* --- Ast helpers --- *)

let test_ast_helpers () =
  let prog = fig3_program () in
  check_bool "stmt_count" true (Ast.stmt_count prog > 5);
  check_int "mpi calls" 3 (List.length (Ast.mpi_calls prog));
  check_bool "collective" true (Ast.is_collective (Ast.Bcast { root = Int 0; bytes = Int 8 }));
  check_bool "p2p" true
    (Ast.is_p2p (Ast.Send { dest = Int 0; tag = Int 0; bytes = Int 0 }));
  check_bool "can_wait recv" true
    (Ast.can_wait (Ast.Recv { src = Ast.Any_source; tag = Ast.Any_tag; bytes = Int 0 }));
  check_bool "can_wait isend" false
    (Ast.can_wait (Ast.Isend { dest = Int 0; tag = Int 0; bytes = Int 0; req = "r" }));
  let main = Ast.main_func prog in
  check_string "main name" "main" main.fname;
  match Ast.stmt_at prog (Loc.v ~file:"fig3.mmp" ~line:9999) with
  | None -> ()
  | Some _ -> Alcotest.fail "stmt_at out of range"

let () =
  Alcotest.run "mlang"
    [
      ( "expr",
        [
          Alcotest.test_case "eval basic" `Quick test_eval_basic;
          Alcotest.test_case "eval bool ops" `Quick test_eval_bool_ops;
          Alcotest.test_case "eval errors" `Quick test_eval_errors;
          Alcotest.test_case "log2/isqrt" `Quick test_log2_isqrt;
          isqrt_prop;
          log2_prop;
          Alcotest.test_case "free vars/params" `Quick test_free_vars_params;
          expr_roundtrip;
          expr_eval_stable;
          is_static_means_rank_invariant;
          depends_on_rank_sound;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments and lines" `Quick
            test_lexer_comments_lines;
          Alcotest.test_case "bad char" `Quick test_lexer_bad_char;
        ] );
      ( "parser",
        [
          Alcotest.test_case "sample program" `Quick test_parse_sample;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "wildcards" `Quick test_parse_wildcards;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "render/parse fixpoint" `Quick
            test_render_parse_fixpoint;
          Alcotest.test_case "registry round trip" `Quick
            test_registry_roundtrip;
          Alcotest.test_case "snippet alignment" `Quick test_snippet_alignment;
        ] );
      ( "loc",
        [ Alcotest.test_case "basics" `Quick test_loc_basics ] );
      ( "parser-intrinsics",
        [
          Alcotest.test_case "min/log2/isqrt, negative params" `Quick
            test_parse_intrinsics;
          Alcotest.test_case "snippet bounds" `Quick test_snippet_bounds;
        ] );
      ( "builder",
        [
          Alcotest.test_case "monotone lines" `Quick test_builder_lines_monotone;
          Alcotest.test_case "params order" `Quick test_builder_params_order;
        ] );
      ( "validate",
        [
          Alcotest.test_case "error classes" `Quick test_validate_errors;
          Alcotest.test_case "request discipline" `Quick
            test_validate_request_discipline;
          Alcotest.test_case "valid fixtures" `Quick test_validate_ok;
        ] );
      ("ast", [ Alcotest.test_case "helpers" `Quick test_ast_helpers ]);
    ]
