(* Tests for the self-observability layer: span nesting and ordering
   invariants, per-domain buffer merge under the pool, exporter JSON
   shape, and the metrics registry. *)

open Scalana_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Every test owns the global collector: enable() resets, and we leave
   it disabled so the other suites see the default-off behaviour. *)
let with_obs f =
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) f

(* --- disabled-by-default inertness --- *)

let test_disabled_inert () =
  Obs.reset ();
  check_bool "off by default" false (Obs.enabled ());
  check_int "with_span passes value through" 42
    (Obs.with_span "never" (fun () -> 42));
  let sp = Obs.start "never" in
  Obs.finish sp;
  Obs.Metrics.incr "never.counter";
  Obs.Metrics.set_gauge "never.gauge" 1.0;
  Obs.Metrics.observe "never.histo" 1.0;
  Alcotest.(check (float 0.0)) "clock parked" 0.0 (Obs.now ());
  check_int "no spans recorded" 0 (List.length (Obs.spans ()));
  let s = Obs.Metrics.snapshot () in
  check_int "no counters" 0 (List.length s.Obs.Metrics.counters);
  check_int "no gauges" 0 (List.length s.Obs.Metrics.gauges);
  check_int "no histograms" 0 (List.length s.Obs.Metrics.histograms)

(* --- span nesting and ordering --- *)

let test_span_nesting () =
  with_obs @@ fun () ->
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner1" (fun () -> ());
      Obs.with_span "inner2" (fun () ->
          Obs.with_span "leaf" (fun () -> ())));
  let sps = Obs.spans () in
  check_int "four spans" 4 (List.length sps);
  let find name = List.find (fun sp -> sp.Obs.sp_name = name) sps in
  let outer = find "outer"
  and inner1 = find "inner1"
  and inner2 = find "inner2"
  and leaf = find "leaf" in
  check_int "outer top-level" 0 outer.Obs.sp_depth;
  check_int "inner1 nested" 1 inner1.Obs.sp_depth;
  check_int "inner2 nested" 1 inner2.Obs.sp_depth;
  check_int "leaf doubly nested" 2 leaf.Obs.sp_depth;
  let within child parent =
    parent.Obs.sp_start <= child.Obs.sp_start
    && child.Obs.sp_stop <= parent.Obs.sp_stop
  in
  check_bool "inner1 within outer" true (within inner1 outer);
  check_bool "inner2 within outer" true (within inner2 outer);
  check_bool "leaf within inner2" true (within leaf inner2);
  check_bool "inner1 before inner2" true
    (inner1.Obs.sp_seq < inner2.Obs.sp_seq);
  (* merged stream is sorted by start time *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Obs.sp_start <= b.Obs.sp_start && sorted rest
    | _ -> true
  in
  check_bool "sorted by start" true (sorted sps);
  (* all on the calling domain here *)
  List.iter (fun sp -> check_int "single tid" outer.Obs.sp_tid sp.Obs.sp_tid) sps

let test_span_args_and_exceptions () =
  with_obs @@ fun () ->
  (try
     Obs.with_span ~args:[ ("k", "v") ] "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  let sp = Obs.start ~args:[ ("a", "1") ] "two_sided" in
  Obs.finish ~args:[ ("b", "2") ] sp;
  let find name = List.find (fun s -> s.Obs.sp_name = name) (Obs.spans ()) in
  check_bool "span closed on exception" true
    ((find "boom").Obs.sp_stop >= (find "boom").Obs.sp_start);
  check_string "start arg kept" "1"
    (List.assoc "a" (find "two_sided").Obs.sp_args);
  check_string "finish arg appended" "2"
    (List.assoc "b" (find "two_sided").Obs.sp_args)

(* Stack discipline per domain: in open (seq) order, a span of depth
   [d > 0] must sit inside the latest earlier span of depth [d - 1] on
   the same domain.  Violations would mean the per-domain buffers were
   corrupted by interleaving. *)
let assert_well_nested sps =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let l = try Hashtbl.find by_tid sp.Obs.sp_tid with Not_found -> [] in
      Hashtbl.replace by_tid sp.Obs.sp_tid (sp :: l))
    sps;
  Hashtbl.iter
    (fun tid l ->
      let l =
        List.sort (fun a b -> compare a.Obs.sp_seq b.Obs.sp_seq) l
      in
      (* seq values unique per domain *)
      let seqs = List.map (fun sp -> sp.Obs.sp_seq) l in
      check_int
        (Printf.sprintf "tid %d: unique seqs" tid)
        (List.length seqs)
        (List.length (List.sort_uniq compare seqs));
      let stack = ref [] in
      List.iter
        (fun sp ->
          while
            match !stack with
            | top :: _ -> top.Obs.sp_depth >= sp.Obs.sp_depth
            | [] -> false
          do
            stack := List.tl !stack
          done;
          (match !stack with
          | parent :: _ when sp.Obs.sp_depth > 0 ->
              check_int
                (Printf.sprintf "tid %d: parent depth" tid)
                (sp.Obs.sp_depth - 1) parent.Obs.sp_depth;
              check_bool
                (Printf.sprintf "tid %d: child inside parent" tid)
                true
                (parent.Obs.sp_start <= sp.Obs.sp_start
                && sp.Obs.sp_stop <= parent.Obs.sp_stop)
          | [] when sp.Obs.sp_depth > 0 ->
              Alcotest.failf "tid %d: depth %d span with no parent" tid
                sp.Obs.sp_depth
          | _ -> ());
          stack := sp :: !stack)
        l)
    by_tid

let test_pool_merge () =
  with_obs @@ fun () ->
  let pool = Scalana_pool.Pool.create ~size:4 () in
  let items = List.init 32 Fun.id in
  let out =
    Scalana_pool.Pool.parallel_map ~pool
      (fun i ->
        Obs.with_span ~args:[ ("i", string_of_int i) ] "work" (fun () -> i * i))
      items
  in
  Scalana_pool.Pool.shutdown pool;
  Alcotest.(check (list int))
    "map order preserved"
    (List.map (fun i -> i * i) items)
    out;
  let sps = Obs.spans () in
  let count name =
    List.length (List.filter (fun sp -> sp.Obs.sp_name = name) sps)
  in
  check_int "all work spans survive the merge" 32 (count "work");
  check_int "one parallel_map span" 1 (count "pool.parallel_map");
  check_bool "pool tasks traced" true (count "pool.task" > 0);
  assert_well_nested sps;
  (* every work span sits inside some pool.task interval on its domain *)
  let tasks = List.filter (fun sp -> sp.Obs.sp_name = "pool.task") sps in
  List.iter
    (fun w ->
      if w.Obs.sp_name = "work" then
        check_bool "work inside a task" true
          (List.exists
             (fun t ->
               t.Obs.sp_tid = w.Obs.sp_tid
               && t.Obs.sp_start <= w.Obs.sp_start
               && w.Obs.sp_stop <= t.Obs.sp_stop)
             tasks))
    sps

(* --- exporters --- *)

let num = function Obs.Json.Num n -> n | _ -> Alcotest.fail "expected number"
let str = function Obs.Json.Str s -> s | _ -> Alcotest.fail "expected string"

let get k j =
  match Obs.Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "missing key %S" k

let test_trace_export_matches () =
  with_obs @@ fun () ->
  Obs.with_span "outer" (fun () ->
      Obs.with_span ~args:[ ("bytes", "128") ] "inner" (fun () -> ()));
  let sps = Obs.spans () in
  (* the document survives a print/parse round-trip *)
  let doc =
    match Obs.Json.of_string (Obs.Json.to_string (Obs.trace_json ())) with
    | Ok d -> d
    | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  in
  let events =
    match get "traceEvents" doc with
    | Obs.Json.Arr l -> l
    | _ -> Alcotest.fail "traceEvents not an array"
  in
  let xs =
    List.filter (fun e -> str (get "ph" e) = "X") events
  in
  check_int "one X event per span" (List.length sps) (List.length xs);
  check_bool "thread metadata present" true
    (List.exists
       (fun e ->
         str (get "ph" e) = "M" && str (get "name" e) = "thread_name")
       events);
  let find name =
    List.find (fun e -> str (get "name" e) = name) xs
  in
  let outer = find "outer" and inner = find "inner" in
  (* microsecond timestamps reproduce the span tree (1µs slack for the
     printed-float round-trip) *)
  let ts e = num (get "ts" e) and dur e = num (get "dur" e) in
  check_bool "inner starts after outer" true (ts inner >= ts outer -. 1.0);
  check_bool "inner ends before outer" true
    (ts inner +. dur inner <= ts outer +. dur outer +. 1.0);
  check_string "args exported" "128" (str (get "bytes" (get "args" inner)));
  List.iter
    (fun e ->
      check_string "category" "scalana" (str (get "cat" e));
      check_bool "nonnegative duration" true (dur e >= 0.0))
    xs

let test_metrics_registry () =
  with_obs @@ fun () ->
  Obs.Metrics.incr "c";
  Obs.Metrics.incr ~by:5 "c";
  Obs.Metrics.set_gauge "g" 1.5;
  Obs.Metrics.set_gauge "g" 2.5;
  Obs.Metrics.observe "h" 0.5e-6;
  Obs.Metrics.observe "h" 2.0;
  Obs.Metrics.observe "h" 100.0;
  let s = Obs.Metrics.snapshot () in
  check_int "counter accumulates" 6 (List.assoc "c" s.Obs.Metrics.counters);
  Alcotest.(check (float 0.0)) "gauge last write wins" 2.5
    (List.assoc "g" s.Obs.Metrics.gauges);
  let h = List.assoc "h" s.Obs.Metrics.histograms in
  check_int "histo count" 3 h.Obs.Metrics.h_count;
  Alcotest.(check (float 1e-9)) "histo sum" 102.0000005 h.Obs.Metrics.h_sum;
  Alcotest.(check (float 0.0)) "histo min" 0.5e-6 h.Obs.Metrics.h_min;
  Alcotest.(check (float 0.0)) "histo max" 100.0 h.Obs.Metrics.h_max;
  check_int "bucket layout"
    (Array.length Obs.Metrics.bucket_bounds + 1)
    (Array.length h.Obs.Metrics.h_buckets);
  check_int "buckets partition the observations" h.Obs.Metrics.h_count
    (Array.fold_left ( + ) 0 h.Obs.Metrics.h_buckets);
  check_int "overflow band used" 1
    h.Obs.Metrics.h_buckets.(Array.length Obs.Metrics.bucket_bounds);
  (* the flat export parses and carries the same counter *)
  let doc =
    match Obs.Json.of_string (Obs.Json.to_string (Obs.metrics_json ())) with
    | Ok d -> d
    | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  in
  check_int "counter exported" 6 (int_of_float (num (get "c" (get "counters" doc))))

let test_phase_summary () =
  with_obs @@ fun () ->
  Obs.with_span "a" (fun () -> ());
  Obs.with_span "a" (fun () -> ());
  Obs.with_span "b" (fun () -> ());
  let summary = Obs.phase_summary () in
  check_int "two phases" 2 (List.length summary);
  let calls name =
    let _, c, _ =
      List.find (fun (n, _, _) -> String.equal n name) summary
    in
    c
  in
  check_int "a called twice" 2 (calls "a");
  check_int "b called once" 1 (calls "b");
  let rec sorted_desc = function
    | (_, _, t1) :: ((_, _, t2) :: _ as rest) -> t1 >= t2 && sorted_desc rest
    | _ -> true
  in
  check_bool "sorted by total desc" true (sorted_desc summary)

(* --- flow events --- *)

(* The pool draws one flow arrow per task, enqueue -> execution; start
   and finish points must pair up by id, in order. *)
let test_pool_flows () =
  with_obs @@ fun () ->
  let pool = Scalana_pool.Pool.create ~size:3 () in
  let n = 8 in
  ignore
    (Scalana_pool.Pool.parallel_map ~pool (fun i -> i) (List.init n Fun.id));
  Scalana_pool.Pool.shutdown pool;
  let fls = Obs.flows () in
  let starts = List.filter (fun f -> not f.Obs.fl_end) fls in
  let finishes = List.filter (fun f -> f.Obs.fl_end) fls in
  check_int "one start per task" n (List.length starts);
  check_int "one finish per task" n (List.length finishes);
  let ids l = List.sort_uniq compare (List.map (fun f -> f.Obs.fl_id) l) in
  check_bool "ids pair up" true (ids starts = ids finishes);
  check_int "ids unique" n (List.length (ids starts));
  List.iter
    (fun s ->
      let f = List.find (fun f -> f.Obs.fl_id = s.Obs.fl_id) finishes in
      check_bool "start before finish" true (s.Obs.fl_time <= f.Obs.fl_time))
    starts;
  (* the trace document carries them as "s"/"f" events with bp=e *)
  let doc =
    match Obs.Json.of_string (Obs.Json.to_string (Obs.trace_json ())) with
    | Ok d -> d
    | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  in
  let events =
    match get "traceEvents" doc with
    | Obs.Json.Arr l -> l
    | _ -> Alcotest.fail "traceEvents not an array"
  in
  let ph p = List.filter (fun e -> str (get "ph" e) = p) events in
  check_int "s events exported" n (List.length (ph "s"));
  check_int "f events exported" n (List.length (ph "f"));
  List.iter
    (fun e -> check_string "binding point on finish" "e" (str (get "bp" e)))
    (ph "f")

(* Flow ids are drawn from one process-global allocator, so a pipeline
   trace and a rank-timeline trace written in the same process never
   collide in a merged Perfetto load (and both documents stay valid
   JSON). *)
let test_flow_ids_disjoint_across_exporters () =
  with_obs @@ fun () ->
  let id = Obs.Flow.next_id () in
  Obs.flow_start ~name:"pipeline" id;
  Obs.flow_finish ~name:"pipeline" id;
  let parse j =
    match Obs.Json.of_string (Obs.Json.to_string j) with
    | Ok d -> d
    | Error e -> Alcotest.failf "JSON does not parse: %s" e
  in
  let pipeline_doc = parse (Obs.trace_json ()) in
  let tl =
    {
      Scalana_profile.Timeline.nprocs = 2;
      elapsed = 1.0;
      intervals = [||];
      messages =
        [|
          {
            Scalana_profile.Timeline.msg_src = 0;
            msg_dst = 1;
            msg_send_time = 0.1;
            msg_recv_enter = 0.2;
            msg_arrival = 0.3;
            msg_tag = 5;
            msg_bytes = 64;
            msg_vertex = None;
          };
        |];
      blocked = [| 0.0; 0.0 |];
      dropped = [| 0; 0 |];
      merged = 0;
    }
  in
  let rank_doc = parse (Scalana_profile.Timeline.to_trace_json tl) in
  let flow_ids doc =
    let events =
      match get "traceEvents" doc with
      | Obs.Json.Arr l -> l
      | _ -> Alcotest.fail "traceEvents not an array"
    in
    List.filter_map
      (fun e ->
        match str (get "ph" e) with
        | "s" | "f" -> Some (int_of_float (num (get "id" e)))
        | _ -> None)
      events
    |> List.sort_uniq compare
  in
  let pipeline_ids = flow_ids pipeline_doc in
  let rank_ids = flow_ids rank_doc in
  check_bool "pipeline trace has flows" true (pipeline_ids <> []);
  check_bool "rank trace has flows" true (rank_ids <> []);
  check_bool "no id collides across the two documents" true
    (List.for_all (fun i -> not (List.mem i pipeline_ids)) rank_ids)

(* Wait-state totals reach the metrics registry (and --metrics-out):
   one op counter and one seconds gauge per class. *)
let test_waitstate_metrics () =
  with_obs @@ fun () ->
  let tl =
    {
      Scalana_profile.Timeline.nprocs = 2;
      elapsed = 2.0;
      intervals =
        [|
          {
            Scalana_profile.Timeline.iv_rank = 1;
            iv_vertex = Some 4;
            iv_start = 1.0;
            iv_stop = 2.0;
            iv_kind =
              Scalana_profile.Timeline.Mpi
                {
                  Scalana_profile.Timeline.op = "MPI_Recv";
                  wait = 0.5;
                  deps = [ (0, 1.5, 2.0) ];
                  send_dests = [];
                  coll = None;
                };
            iv_merged = 1;
          };
        |];
      messages = [||];
      blocked = [| 0.0; 0.5 |];
      dropped = [| 0; 0 |];
      merged = 0;
    }
  in
  ignore (Scalana_detect.Waitstate.analyze tl : Scalana_detect.Waitstate.t);
  let doc =
    match Obs.Json.of_string (Obs.Json.to_string (Obs.metrics_json ())) with
    | Ok d -> d
    | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  in
  check_int "late-sender op counted" 1
    (int_of_float
       (num (get "waitstate.late-sender" (get "counters" doc))));
  Alcotest.(check (float 1e-12))
    "late-sender seconds gauge" 0.5
    (num (get "waitstate.late-sender_seconds" (get "gauges" doc)));
  Alcotest.(check (float 1e-12))
    "other classes report zero" 0.0
    (num (get "waitstate.collective-imbalance_seconds" (get "gauges" doc)))

(* --- OpenMetrics exposition --- *)

let contains needle s =
  try
    ignore (Str.search_forward (Str.regexp_string needle) s 0);
    true
  with Not_found -> false

let test_openmetrics_format () =
  with_obs @@ fun () ->
  Obs.Metrics.incr ~by:3 "ppg.builds";
  Obs.Metrics.set_gauge "waitstate.late-sender_seconds" 0.5;
  Obs.Metrics.observe "fit" 0.25;
  Obs.Metrics.observe "fit" 2.0;
  Obs.with_span "detect" (fun () -> ());
  let text = Obs.openmetrics_string () in
  let lines = String.split_on_char '\n' text in
  (* counters get the _total suffix and a TYPE declaration *)
  check_bool "counter TYPE line" true
    (List.mem "# TYPE scalana_ppg_builds counter" lines);
  check_bool "counter sample" true
    (List.mem "scalana_ppg_builds_total 3" lines);
  (* gauge names are sanitized into the scalana_ namespace *)
  check_bool "gauge sample" true
    (List.mem "scalana_waitstate_late_sender_seconds 0.5" lines);
  (* histograms are cumulative with a closing +Inf bucket *)
  check_bool "histogram TYPE line" true
    (List.mem "# TYPE scalana_fit histogram" lines);
  let buckets =
    List.filter (fun l -> contains "scalana_fit_bucket{le=" l) lines
  in
  check_int "one bucket per bound plus +Inf"
    (Array.length Obs.Metrics.bucket_bounds + 1)
    (List.length buckets);
  check_bool "+Inf bucket closes the histogram" true
    (List.mem "scalana_fit_bucket{le=\"+Inf\"} 2" lines);
  let cumulative =
    List.filter_map
      (fun l ->
        match String.rindex_opt l ' ' with
        | Some i when contains "scalana_fit_bucket" l ->
            int_of_string_opt
              (String.sub l (i + 1) (String.length l - i - 1))
        | _ -> None)
      lines
  in
  check_bool "bucket counts are nondecreasing" true
    (let rec ok = function
       | a :: (b :: _ as rest) -> a <= b && ok rest
       | _ -> true
     in
     ok cumulative);
  check_bool "histogram count" true (List.mem "scalana_fit_count 2" lines);
  (* phases appear as labelled totals *)
  check_bool "phase seconds" true
    (List.exists
       (fun l -> contains "scalana_phase_seconds_total{phase=\"detect\"}" l)
       lines);
  check_bool "phase calls" true
    (List.mem "scalana_phase_calls_total{phase=\"detect\"} 1" lines);
  (* the exposition terminates with the mandatory EOF marker *)
  check_string "EOF terminator" "# EOF"
    (List.nth lines (List.length lines - 2));
  (* export writes the same text *)
  let path = Filename.temp_file "scalana_om" ".prom" in
  Obs.export_openmetrics ~path;
  let written = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  check_string "file matches string" text written

let test_openmetrics_name_sanitization () =
  with_obs @@ fun () ->
  Obs.Metrics.incr "weird metric-name.v2";
  let text = Obs.openmetrics_string () in
  check_bool "invalid chars replaced" true
    (contains "scalana_weird_metric_name_v2_total 1" text)

(* --- deterministic exporter key order --- *)

let test_exporters_sorted () =
  with_obs @@ fun () ->
  (* args recorded out of order come back sorted in the trace *)
  Obs.with_span ~args:[ ("zeta", "1"); ("alpha", "2") ] "s" (fun () -> ());
  let doc =
    match Obs.Json.of_string (Obs.Json.to_string (Obs.trace_json ())) with
    | Ok d -> d
    | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  in
  let events =
    match get "traceEvents" doc with
    | Obs.Json.Arr l -> l
    | _ -> Alcotest.fail "traceEvents not an array"
  in
  let x = List.find (fun e -> str (get "ph" e) = "X") events in
  (match get "args" x with
  | Obs.Json.Obj kvs ->
      Alcotest.(check (list string))
        "span args sorted" [ "alpha"; "zeta" ] (List.map fst kvs)
  | _ -> Alcotest.fail "args not an object");
  (* phases in the metrics document are sorted by name, not by cost *)
  Obs.with_span "zz" (fun () -> Unix.sleepf 0.002);
  Obs.with_span "aa" (fun () -> ());
  let doc =
    match Obs.Json.of_string (Obs.Json.to_string (Obs.metrics_json ())) with
    | Ok d -> d
    | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  in
  match get "phases" doc with
  | Obs.Json.Arr phases ->
      let names =
        List.map (fun ph -> str (get "name" ph)) phases
      in
      Alcotest.(check (list string))
        "phases sorted by name" (List.sort compare names) names;
      check_bool "expensive phase not first despite cost" true
        (names = List.sort compare names)
  | _ -> Alcotest.fail "phases not an array"

(* JSON corner cases the exporters rely on. *)
let test_json_roundtrip () =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("s", Str "quote \" backslash \\ newline \n tab \t");
        ("n", Num 1.5);
        ("i", Num 1234567.0);
        ("b", Bool true);
        ("z", Null);
        ("a", Arr [ Num 1.0; Str "x"; Obj [] ]);
      ]
  in
  (match of_string (to_string doc) with
  | Ok d -> check_bool "round-trips" true (d = doc)
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e);
  check_string "integral numbers print bare" "1234567"
    (to_string (Num 1234567.0));
  (match of_string "[1, 2" with
  | Ok _ -> Alcotest.fail "accepted malformed input"
  | Error _ -> ());
  match of_string "{\"k\": [true, null, -2.5e1]}" with
  | Ok (Obj [ ("k", Arr [ Bool true; Null; Num n ]) ]) ->
      Alcotest.(check (float 0.0)) "scientific notation" (-25.0) n
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.failf "parse failed: %s" e

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "disabled is inert" `Quick test_disabled_inert;
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "args and exceptions" `Quick
            test_span_args_and_exceptions;
          Alcotest.test_case "pool merge uncorrupted" `Quick test_pool_merge;
        ] );
      ( "export",
        [
          Alcotest.test_case "trace matches span tree" `Quick
            test_trace_export_matches;
          Alcotest.test_case "json corner cases" `Quick test_json_roundtrip;
          Alcotest.test_case "openmetrics format" `Quick
            test_openmetrics_format;
          Alcotest.test_case "openmetrics name sanitization" `Quick
            test_openmetrics_name_sanitization;
          Alcotest.test_case "deterministic key order" `Quick
            test_exporters_sorted;
        ] );
      ( "flows",
        [
          Alcotest.test_case "pool enqueue->execution arrows" `Quick
            test_pool_flows;
          Alcotest.test_case "ids disjoint across exporters" `Quick
            test_flow_ids_disjoint_across_exporters;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "phase summary" `Quick test_phase_summary;
          Alcotest.test_case "waitstate classes exported" `Quick
            test_waitstate_metrics;
        ] );
    ]
