(* Tests for the domain pool and the parallel analysis pipeline:
   ordering, chunking, exception propagation, nested-use fallback, and
   the determinism guarantee (N domains produce byte-identical reports
   to the sequential run). *)

open Testutil

module Pool = Scalana_pool.Pool

let with_test_pool size f =
  let pool = Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let ints n = List.init n (fun i -> i)

let test_ordering () =
  with_test_pool 4 (fun pool ->
      let xs = ints 200 in
      let expect = List.map (fun x -> x * x) xs in
      let got = Pool.parallel_map ~pool (fun x -> x * x) xs in
      Alcotest.(check (list int)) "order preserved" expect got)

let test_matches_sequential_map () =
  (* no pool at all: plain List.map *)
  let xs = ints 17 in
  Alcotest.(check (list int))
    "no pool" (List.map succ xs)
    (Pool.parallel_map succ xs)

let test_pool_size_one () =
  with_test_pool 1 (fun pool ->
      check_int "size" 1 (Pool.size pool);
      let xs = ints 50 in
      Alcotest.(check (list int))
        "sequential fallback" (List.map succ xs)
        (Pool.parallel_map ~pool succ xs))

let test_empty_and_singleton () =
  with_test_pool 3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.parallel_map ~pool succ []);
      Alcotest.(check (list int))
        "singleton" [ 8 ]
        (Pool.parallel_map ~pool succ [ 7 ]))

let test_exception_propagation () =
  with_test_pool 4 (fun pool ->
      match
        Pool.parallel_map ~pool
          (fun x -> if x >= 100 then failwith (Printf.sprintf "boom%d" x) else x)
          (ints 200)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          (* deterministic: the smallest failing index wins regardless of
             which domain hit its chunk first *)
          check_string "earliest failure" "boom100" msg)

let test_exception_pool_survives () =
  with_test_pool 4 (fun pool ->
      (try
         ignore (Pool.parallel_map ~pool (fun _ -> failwith "die") (ints 32))
       with Failure _ -> ());
      (* the pool keeps working after a failed batch *)
      Alcotest.(check (list int))
        "pool alive" (List.map succ (ints 32))
        (Pool.parallel_map ~pool succ (ints 32)))

let test_nested_use_falls_back () =
  with_test_pool 4 (fun pool ->
      let got =
        Pool.parallel_map ~pool
          (fun x ->
            (* inner map from (possibly) a worker domain must complete
               sequentially rather than deadlock on the shared queue *)
            List.fold_left ( + ) 0 (Pool.parallel_map ~pool succ (ints x)))
          (ints 20)
      in
      let expect =
        List.map
          (fun x -> List.fold_left ( + ) 0 (List.map succ (ints x)))
          (ints 20)
      in
      Alcotest.(check (list int)) "nested" expect got)

let test_with_pool () =
  let r = Pool.with_pool ~size:3 (fun pool -> Pool.parallel_map ?pool succ (ints 10)) in
  Alcotest.(check (list int)) "with_pool" (List.map succ (ints 10)) r;
  (* size <= 1: no pool is created at all *)
  Pool.with_pool ~size:1 (fun pool ->
      check_bool "no pool for size 1" true (pool = None))

(* --- determinism of the parallel pipeline ------------------------- *)

let pipeline_with_domains name scales domains =
  let entry = Scalana_apps.Registry.find name in
  let config = { Scalana.Config.default with analysis_domains = domains } in
  Scalana.Pipeline.run ~config ~cost:entry.cost ~scales (entry.make ())

let check_deterministic name scales =
  let seq = pipeline_with_domains name scales 1 in
  let par = pipeline_with_domains name scales 4 in
  check_string
    (name ^ ": report byte-identical")
    seq.Scalana.Pipeline.report par.Scalana.Pipeline.report;
  Alcotest.(check (list string))
    (name ^ ": same causes")
    (Scalana.Pipeline.root_cause_labels seq)
    (Scalana.Pipeline.root_cause_labels par);
  check_int
    (name ^ ": same path count")
    (List.length seq.analysis.paths)
    (List.length par.analysis.paths);
  List.iter2
    (fun (s : Scalana_detect.Rootcause.cause)
         (p : Scalana_detect.Rootcause.cause) ->
      Alcotest.(check (list int))
        (name ^ ": same culprit ranks") s.culprit_ranks p.culprit_ranks)
    seq.analysis.causes par.analysis.causes

let test_determinism_zeusmp () = check_deterministic "zeusmp" [ 4; 8; 16 ]
let test_determinism_cg () = check_deterministic "cg" [ 4; 8 ]

let test_icall_program_stays_deterministic () =
  (* indirect calls force the sequential run stage; the rest of the
     analysis still fans out, and the result must not change *)
  let prog () = recursion_program () in
  let run domains =
    let config = { Scalana.Config.default with analysis_domains = domains } in
    Scalana.Pipeline.run ~config ~scales:[ 4; 8 ] (prog ())
  in
  let seq = run 1 in
  let par = run 4 in
  check_string "report byte-identical" seq.Scalana.Pipeline.report
    par.Scalana.Pipeline.report

let () =
  Alcotest.run "pool"
    [
      ( "parallel_map",
        [
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "no pool = List.map" `Quick
            test_matches_sequential_map;
          Alcotest.test_case "pool size 1" `Quick test_pool_size_one;
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "pool survives failed batch" `Quick
            test_exception_pool_survives;
          Alcotest.test_case "nested use falls back" `Quick
            test_nested_use_falls_back;
          Alcotest.test_case "with_pool" `Quick test_with_pool;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "zeusmp 4 domains = 1 domain" `Quick
            test_determinism_zeusmp;
          Alcotest.test_case "cg 4 domains = 1 domain" `Quick
            test_determinism_cg;
          Alcotest.test_case "icall program stays deterministic" `Quick
            test_icall_program_stays_deterministic;
        ] );
    ]
