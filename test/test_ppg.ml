(* Tests for PPG construction and the cross-scale container, plus the
   columnar store's safety net: a differential-equivalence suite that
   rebuilds every registry profile with the frozen pre-columnar builder
   (Ppg_reference) and asserts accessor-digest equality, and seeded
   properties for sparse-coverage round-trips through the columns. *)

open Scalana_mlang
open Scalana_psg
open Scalana_runtime
open Scalana_profile
open Scalana_ppg
open Testutil

let profile ?(nprocs = 4) ?(record_prob = 1.0) prog =
  let locals = Intra.build_all prog in
  let full = Inter.build ~locals prog in
  let contraction = Contract.run full in
  let index = Index.build ~full ~contraction in
  let config = { Profiler.default_config with record_prob } in
  let profiler = Profiler.create ~config ~index ~nprocs () in
  let cfg = Exec.config ~nprocs ~tools:[ Profiler.tool profiler ] () in
  ignore (Exec.run ~cfg prog);
  (contraction.Contract.psg, Profiler.data profiler)

(* late-sender chain: rank r+1 waits on rank r's send *)
let chain_program () =
  let open Expr.Infix in
  let b = Builder.create ~file:"chain.mmp" ~name:"chain" () in
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~label:"steps" ~var:"s" ~count:(i 6) (fun () ->
            [
              Builder.branch b
                ~cond:(rank = i 0)
                (fun () ->
                  [
                    Builder.comp b ~label:"origin" ~flops:(i 40_000_000)
                      ~mem:(i 15_000_000) ();
                  ]);
              Builder.branch b
                ~cond:(rank > i 0)
                (fun () ->
                  [
                    Builder.recv b ~src:(rank - i 1) ~tag:(i 1)
                      ~bytes:(i 4096) ();
                  ]);
              Builder.branch b
                ~cond:(rank < np - i 1)
                (fun () ->
                  [
                    Builder.send b ~dest:(rank + i 1) ~tag:(i 1)
                      ~bytes:(i 4096) ();
                  ]);
              Builder.allreduce b ~bytes:(i 8);
            ]);
      ]);
  Builder.program b

let test_ppg_comm_edges () =
  let psg, data = profile (chain_program ()) in
  let ppg = Ppg.build ~psg data in
  check_bool "edges exist" true (Ppg.n_comm_edges ppg > 0);
  (* rank 2's recv has an incoming edge from rank 1 *)
  let recv_vertex =
    List.find
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Mpi (Ast.Recv _) -> true
        | _ -> false)
      (Psg.find_all Vertex.is_mpi psg)
  in
  let edges = Ppg.incoming_edges ppg ~rank:2 ~vertex:recv_vertex.Vertex.id in
  check_bool "rank2 incoming" true (edges <> []);
  List.iter
    (fun (e : Ppg.comm_edge) -> check_int "sender is rank 1" 1 e.send_rank)
    edges

let test_ppg_waiting_edges_filter () =
  let psg, data = profile (chain_program ()) in
  let ppg = Ppg.build ~psg data in
  let recv_vertex =
    List.find
      (fun v ->
        match v.Vertex.kind with Vertex.Mpi (Ast.Recv _) -> true | _ -> false)
      (Psg.find_all Vertex.is_mpi psg)
  in
  (* rank 1 waits on rank 0's origin delay: critical edge present *)
  (match Ppg.critical_edge ppg ~rank:1 ~vertex:recv_vertex.Vertex.id with
  | Some e ->
      check_int "from rank 0" 0 e.Ppg.send_rank;
      check_bool "waited" true e.Ppg.has_wait
  | None -> Alcotest.fail "rank 1 should have a waiting edge");
  (* waiting_edges is a subset of incoming_edges *)
  let all = Ppg.incoming_edges ppg ~rank:1 ~vertex:recv_vertex.Vertex.id in
  let waiting = Ppg.waiting_edges ppg ~rank:1 ~vertex:recv_vertex.Vertex.id in
  check_bool "subset" true (List.length waiting <= List.length all)

let test_ppg_coll_late_rank () =
  let psg, data = profile (chain_program ()) in
  let ppg = Ppg.build ~psg data in
  let allreduce =
    List.find
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Mpi (Ast.Allreduce _) -> true
        | _ -> false)
      (Psg.find_all Vertex.is_mpi psg)
  in
  match Ppg.coll_late_rank ppg ~vertex:allreduce.Vertex.id with
  | Some late -> check_int "last rank arrives last" 3 late
  | None -> Alcotest.fail "no collective record"

let test_ppg_times () =
  let psg, data = profile (chain_program ()) in
  let ppg = Ppg.build ~psg data in
  let origin =
    List.find
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Comp { label = Some "origin"; _ } -> true
        | _ -> false)
      (Psg.find_all Vertex.is_comp psg)
  in
  let times = Ppg.times_across_ranks ppg ~vertex:origin.Vertex.id in
  check_bool "rank0 dominates" true
    (times.(0) > times.(1) && times.(0) > times.(2) && times.(0) > times.(3));
  check_bool "total positive" true (Ppg.total_time ppg > 0.0)

let test_crossscale () =
  let prog = chain_program () in
  let psg, d4 = profile ~nprocs:4 prog in
  let _, d8 = profile ~nprocs:8 prog in
  let cs = Crossscale.create ~psg [ (8, d8); (4, d4) ] in
  Alcotest.(check (list int)) "scales sorted" [ 4; 8 ] (Crossscale.scales cs);
  let n, _ = Crossscale.largest cs in
  check_int "largest" 8 n;
  check_bool "ppg at 4 exists" true (Crossscale.ppg_at cs ~nprocs:4 <> None);
  check_bool "ppg at 16 missing" true (Crossscale.ppg_at cs ~nprocs:16 = None);
  let touched = Crossscale.touched_vertices cs in
  check_bool "touched nonempty" true (touched <> []);
  (* series per vertex has one entry per scale with per-rank arrays *)
  let v = List.hd touched in
  let series = Crossscale.series cs ~vertex:v in
  check_int "two points" 2 (List.length series);
  List.iter
    (fun (n, arr) -> check_int "array width" n (Array.length arr))
    series

(* --- differential equivalence against the frozen pre-columnar builder ---

   Every accessor of the production store, digested and compared against
   Ppg_reference built from the *same* profile, over the full Table II
   registry at np in {4, 16, 64}, clean and under a fault plan that
   exercises every degraded shape the columns must carry: a killed rank
   (absent cells), a skewed clock (asymmetric values), and poisoned
   metrics (NaN and negative cells that must survive bit-for-bit).
   Mirrors the 66-digest engine pin of the simulator rework. *)

(* Everything observable about a PPG, as first-class accessors, so the
   digest below is computed by one function for both implementations. *)
type view = {
  v_nprocs : int;
  v_touched : int list;
  v_effective : float;
  v_total_time : float;
  v_n_comm_edges : int;
  v_time_of : rank:int -> vertex:int -> float;
  v_wait_of : rank:int -> vertex:int -> float;
  v_times : vertex:int -> float array;
  v_waits : vertex:int -> float array;
  v_coverage : vertex:int -> float;
  v_total_wait : vertex:int -> float;
  v_incoming : rank:int -> vertex:int -> (int * int * bool * float * int) list;
  v_critical : rank:int -> vertex:int -> (int * int * bool * float * int) option;
  v_coll_late : vertex:int -> int option;
}

let view_of_ppg (p : Ppg.t) =
  let edge (e : Ppg.comm_edge) =
    (e.Ppg.send_rank, e.Ppg.send_vertex, e.Ppg.has_wait, e.Ppg.max_wait, e.Ppg.hits)
  in
  {
    v_nprocs = p.Ppg.nprocs;
    v_touched = Ppg.touched_vertices p;
    v_effective = Ppg.effective_nprocs p;
    v_total_time = Ppg.total_time p;
    v_n_comm_edges = Ppg.n_comm_edges p;
    v_time_of = (fun ~rank ~vertex -> Ppg.time_of p ~rank ~vertex);
    v_wait_of = (fun ~rank ~vertex -> Ppg.wait_of p ~rank ~vertex);
    v_times = (fun ~vertex -> Ppg.times_across_ranks p ~vertex);
    v_waits = (fun ~vertex -> Ppg.waits_across_ranks p ~vertex);
    v_coverage = (fun ~vertex -> Ppg.coverage p ~vertex);
    v_total_wait = (fun ~vertex -> Ppg.total_wait p ~vertex);
    v_incoming =
      (fun ~rank ~vertex ->
        List.map edge (Ppg.incoming_edges p ~rank ~vertex));
    v_critical =
      (fun ~rank ~vertex ->
        Option.map edge (Ppg.critical_edge p ~rank ~vertex));
    v_coll_late = (fun ~vertex -> Ppg.coll_late_rank p ~vertex);
  }

let view_of_reference (p : Ppg_reference.t) =
  let edge (e : Ppg_reference.comm_edge) =
    ( e.Ppg_reference.send_rank,
      e.Ppg_reference.send_vertex,
      e.Ppg_reference.has_wait,
      e.Ppg_reference.max_wait,
      e.Ppg_reference.hits )
  in
  {
    v_nprocs = p.Ppg_reference.nprocs;
    v_touched = Ppg_reference.touched_vertices p;
    v_effective = Ppg_reference.effective_nprocs p;
    v_total_time = Ppg_reference.total_time p;
    v_n_comm_edges = Ppg_reference.n_comm_edges p;
    v_time_of = (fun ~rank ~vertex -> Ppg_reference.time_of p ~rank ~vertex);
    v_wait_of = (fun ~rank ~vertex -> Ppg_reference.wait_of p ~rank ~vertex);
    v_times = (fun ~vertex -> Ppg_reference.times_across_ranks p ~vertex);
    v_waits = (fun ~vertex -> Ppg_reference.waits_across_ranks p ~vertex);
    v_coverage = (fun ~vertex -> Ppg_reference.coverage p ~vertex);
    v_total_wait = (fun ~vertex -> Ppg_reference.total_wait p ~vertex);
    v_incoming =
      (fun ~rank ~vertex ->
        List.map edge (Ppg_reference.incoming_edges p ~rank ~vertex));
    v_critical =
      (fun ~rank ~vertex ->
        Option.map edge (Ppg_reference.critical_edge p ~rank ~vertex));
    v_coll_late = (fun ~vertex -> Ppg_reference.coll_late_rank p ~vertex);
  }

(* Digest every accessor over every (vertex, rank) cell, one digest per
   accessor so a mismatch names the diverging component.  Marshal keeps
   float bit patterns (NaN included), so the digests pin values to the
   last bit, not to a print precision. *)
let component_digests v =
  (* No_sharing: the boxed reference store can return the same physical
     float box (the static 0.0) for many cells, which sharing-aware
     marshaling encodes as back-references; the digest must depend on
     values alone *)
  let d x =
    Digest.to_hex (Digest.string (Marshal.to_string x [ Marshal.No_sharing ]))
  in
  let per_vertex f = List.map (fun vertex -> f ~vertex) v.v_touched in
  let per_cell f =
    per_vertex (fun ~vertex ->
        List.init v.v_nprocs (fun rank -> f ~rank ~vertex))
  in
  [
    ( "header",
      d
        ( v.v_nprocs,
          v.v_touched,
          v.v_effective,
          v.v_total_time,
          v.v_n_comm_edges ) );
    ("times_across_ranks", d (per_vertex v.v_times));
    ("waits_across_ranks", d (per_vertex v.v_waits));
    ("coverage", d (per_vertex v.v_coverage));
    ("total_wait", d (per_vertex v.v_total_wait));
    ("coll_late_rank", d (per_vertex v.v_coll_late));
    ("time_of", d (per_cell v.v_time_of));
    ("wait_of", d (per_cell v.v_wait_of));
    ("incoming_edges", d (per_cell v.v_incoming));
    ("critical_edge", d (per_cell v.v_critical));
  ]

(* Kill + skew + poison: one absent-cell shape, one asymmetric-value
   shape, and NaN/negative cells the columns must preserve verbatim. *)
let diff_fault_plan =
  Faults.plan ~seed:7
    [
      Faults.kill_rank ~rank:1 ~after:1e-5 ();
      Faults.clock_skew ~rank:0 ~factor:1.7;
      Faults.poison_metric ~prob:0.15 `Nan;
      Faults.poison_metric ~prob:0.1 `Negative;
    ]

let profile_entry ?faults (entry : Scalana_apps.Registry.entry) ~nprocs =
  let prog = entry.Scalana_apps.Registry.make () in
  let static = Scalana.Static.analyze prog in
  let r =
    Scalana.Prof.run ?faults ~cost:entry.Scalana_apps.Registry.cost static
      ~nprocs ()
  in
  (Scalana.Static.psg static, r.Scalana.Prof.data)

let test_differential_registry () =
  let checked = ref 0 in
  List.iter
    (fun (entry : Scalana_apps.Registry.entry) ->
      List.iter
        (fun nprocs ->
          List.iter
            (fun (mode, faults) ->
              let psg, data = profile_entry ?faults entry ~nprocs in
              let columnar = component_digests (view_of_ppg (Ppg.build ~psg data)) in
              let reference =
                component_digests
                  (view_of_reference (Ppg_reference.build ~psg data))
              in
              List.iter2
                (fun (name, r) (name', c) ->
                  assert (String.equal name name');
                  check_string
                    (Printf.sprintf "%s np=%d %s: %s"
                       entry.Scalana_apps.Registry.name nprocs mode name)
                    r c)
                reference columnar;
              incr checked)
            [ ("clean", None); ("faulted", Some diff_fault_plan) ])
        [ 4; 16; 64 ])
    Scalana_apps.Registry.all;
  (* the full pin: 11 apps x 3 scales x clean+faulted *)
  check_int "66 digests compared" 66 !checked

(* --- seeded properties for the columnar store --- *)

(* A hand-filled profile: an arbitrary sparse pattern of (rank, vertex)
   cells, some carrying NaN/negative poison, fed straight into the
   build.  The model is a plain association of what was written where. *)
type cell = { c_rank : int; c_vid : int; c_time : float; c_wait : float }

let prop_nprocs = 8

let cell_arb =
  let open Prop in
  let raw =
    pair (int_range 0 (prop_nprocs - 1))
      (pair (int_range 0 24) (pair (int_range 0 11) (float_range 0.001 5.0)))
  in
  map
    (fun (r, (vid, (shape, x))) ->
      let time =
        match shape with
        | 0 -> Float.nan  (* poisoned counter *)
        | 1 -> -.x  (* negative garbage *)
        | _ -> x
      in
      { c_rank = r; c_vid = vid; c_time = time; c_wait = x /. 2.0 })
    ~show:(fun c ->
      Printf.sprintf "r%d v%d t=%h w=%h" c.c_rank c.c_vid c.c_time c.c_wait)
    raw

let cells_arb = Prop.list_of ~max_len:48 cell_arb

(* The PSG handed to the hand-built profiles; the store never reads it
   for cell queries, so any graph works. *)
let prop_psg = lazy (fst (profile (chain_program ())))

let build_sparse cells =
  let data = Profdata.create ~nprocs:prop_nprocs in
  List.iter
    (fun c ->
      let v = Profdata.vector data ~rank:c.c_rank ~vertex:c.c_vid in
      Perfvec.add_sampled v ~time:c.c_time ~samples:1 ~pmu:Pmu.zero;
      Perfvec.add_wait v ~wait:c.c_wait)
    cells;
  (data, Ppg.build ~psg:(Lazy.force prop_psg) data)

let bits = Int64.bits_of_float
let same_float a b = bits a = bits b

(* Expected cell values: accumulated sums per (rank, vid), as add_sampled
   and add_wait leave them. *)
let model cells =
  let m = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let t0, w0, n0 =
        match Hashtbl.find_opt m (c.c_rank, c.c_vid) with
        | Some x -> x
        | None -> (0.0, 0.0, 0)
      in
      Hashtbl.replace m (c.c_rank, c.c_vid)
        (t0 +. c.c_time, w0 +. c.c_wait, n0 + 1))
    cells;
  m

let prop_sparse_round_trip cells =
  let _, ppg = build_sparse cells in
  let m = model cells in
  (* present cells come back bit-for-bit (NaN and negatives included) *)
  Hashtbl.iter
    (fun (rank, vid) (t, w, _) ->
      if not (same_float t (Ppg.time_of ppg ~rank ~vertex:vid)) then
        failwith "present time mismatch";
      if not (same_float w (Ppg.wait_of ppg ~rank ~vertex:vid)) then
        failwith "present wait mismatch")
    m;
  (* absent cells are NaN-safe zeros, never garbage *)
  for vid = 0 to 24 do
    for rank = 0 to prop_nprocs - 1 do
      if not (Hashtbl.mem m (rank, vid)) then begin
        let t = Ppg.time_of ppg ~rank ~vertex:vid in
        let w = Ppg.wait_of ppg ~rank ~vertex:vid in
        if not (same_float t 0.0 && same_float w 0.0) then
          failwith "absent cell not a clean zero"
      end
    done;
    (* coverage counts exactly the present ranks and stays finite *)
    let present = ref 0 in
    for rank = 0 to prop_nprocs - 1 do
      if Hashtbl.mem m (rank, vid) then incr present
    done;
    let cov = Ppg.coverage ppg ~vertex:vid in
    if Float.is_nan cov then failwith "coverage NaN";
    if abs_float (cov -. (float_of_int !present /. float_of_int prop_nprocs))
       > 1e-12
    then failwith "coverage count wrong"
  done;
  true

let prop_row_gather_equals_cells cells =
  let _, ppg = build_sparse cells in
  List.for_all
    (fun vid ->
      let times = Ppg.times_across_ranks ppg ~vertex:vid in
      let waits = Ppg.waits_across_ranks ppg ~vertex:vid in
      Array.length times = prop_nprocs
      && Array.length waits = prop_nprocs
      && List.for_all
           (fun rank ->
             same_float times.(rank) (Ppg.time_of ppg ~rank ~vertex:vid)
             && same_float waits.(rank) (Ppg.wait_of ppg ~rank ~vertex:vid))
           (List.init prop_nprocs Fun.id))
    (Ppg.touched_vertices ppg)

(* Sanitize over column rows: idempotent, and physically the same array
   when the input is already clean. *)
let prop_sanitize_idempotent cells =
  let _, ppg = build_sparse cells in
  List.for_all
    (fun vid ->
      let row = Ppg.times_across_ranks ppg ~vertex:vid in
      let clean1, dropped1 = Scalana_detect.Aggregate.sanitize row in
      let clean2, dropped2 = Scalana_detect.Aggregate.sanitize clean1 in
      dropped2 = 0
      && clean2 == clean1
      && (dropped1 > 0 || clean1 == row)
      && Array.for_all (fun x -> not (Float.is_nan x || x < 0.0)) clean1)
    (Ppg.touched_vertices ppg)

let () =
  Alcotest.run "ppg"
    [
      ( "build",
        [
          Alcotest.test_case "comm edges" `Quick test_ppg_comm_edges;
          Alcotest.test_case "waiting edges" `Quick
            test_ppg_waiting_edges_filter;
          Alcotest.test_case "collective late rank" `Quick
            test_ppg_coll_late_rank;
          Alcotest.test_case "per-rank times" `Quick test_ppg_times;
        ] );
      ("crossscale", [ Alcotest.test_case "container" `Quick test_crossscale ]);
      ( "differential",
        [
          Alcotest.test_case "registry x scales x clean+faulted" `Quick
            test_differential_registry;
        ] );
      ( "columnar-props",
        [
          Prop.test ~count:60 "sparse coverage round-trips" cells_arb
            prop_sparse_round_trip;
          Prop.test ~count:60 "row gather equals cell reads" cells_arb
            prop_row_gather_equals_cells;
          Prop.test ~count:60 "sanitize idempotent over rows" cells_arb
            prop_sanitize_idempotent;
        ] );
    ]
