(* Tests for the ScalAna profiling layer: performance vectors, comm-record
   compression, sampling attribution and indirect-call resolution. *)

open Scalana_mlang
open Scalana_psg
open Scalana_runtime
open Scalana_profile
open Testutil

let static_of prog =
  let locals = Intra.build_all prog in
  let full = Inter.build ~locals prog in
  let contraction = Contract.run full in
  let index = Index.build ~full ~contraction in
  (locals, full, contraction, index)

let profiled_run ?config ?cost ?(nprocs = 4) prog =
  let _, _, contraction, index = static_of prog in
  let profiler = Profiler.create ?config ~index ~nprocs () in
  let cfg =
    Exec.config ~nprocs ?cost ~tools:[ Profiler.tool profiler ] ()
  in
  let result = Exec.run ~cfg prog in
  (contraction, index, Profiler.data profiler, result)

(* --- perfvec --- *)

let test_perfvec () =
  let v = Perfvec.create () in
  Perfvec.add_sampled v ~time:0.5 ~samples:2 ~pmu:Pmu.zero;
  Perfvec.add_sampled v ~time:0.25 ~samples:1 ~pmu:Pmu.zero;
  Perfvec.add_wait v ~wait:0.1;
  check_float "time" 0.75 v.Perfvec.time;
  check_int "samples" 3 v.Perfvec.samples;
  check_float "wait" 0.1 v.Perfvec.wait;
  check_int "calls" 1 v.Perfvec.calls;
  let dst = Perfvec.create () in
  Perfvec.merge_into ~dst v;
  Perfvec.merge_into ~dst v;
  check_float "merged time" 1.5 dst.Perfvec.time;
  check_int "merged samples" 6 dst.Perfvec.samples

(* --- commrec --- *)

let test_commrec_compression () =
  let t = Commrec.create () in
  let key =
    {
      Commrec.recv_rank = 1;
      recv_vertex = 10;
      send_rank = 0;
      send_vertex = 9;
      tag = 3;
      bytes = 1024;
    }
  in
  for _ = 1 to 100 do
    Commrec.record_p2p t ~key ~waited:false ~wait_seconds:0.0
  done;
  Commrec.record_p2p t ~key ~waited:true ~wait_seconds:0.5;
  check_int "one edge" 1 (Commrec.n_p2p t);
  let e = List.hd (Commrec.p2p_edges t) in
  check_int "hits" 101 e.Commrec.hits;
  check_bool "wait sticky" true e.Commrec.has_wait;
  check_float "max wait" 0.5 e.Commrec.max_wait;
  (* compression ratio accounting *)
  check_bool "compressed smaller" true
    (Commrec.storage_bytes t < Commrec.uncompressed_bytes t);
  (* distinct keys create distinct edges *)
  Commrec.record_p2p t
    ~key:{ key with Commrec.tag = 4 }
    ~waited:false ~wait_seconds:0.0;
  check_int "two edges" 2 (Commrec.n_p2p t)

let test_commrec_collectives () =
  let t = Commrec.create () in
  Commrec.record_coll t ~vertex:5 ~last_arrival_rank:2;
  Commrec.record_coll t ~vertex:5 ~last_arrival_rank:2;
  Commrec.record_coll t ~vertex:5 ~last_arrival_rank:7;
  check_int "one record" 1 (Commrec.n_coll t);
  let r = List.hd (Commrec.coll_records t) in
  check_int "instances" 3 r.Commrec.instances;
  check_int "dominant late rank" 2 (Commrec.dominant_late_rank r)

(* --- sampling --- *)

let test_sampling_density () =
  (* a long single-vertex program: sample count ~ elapsed * freq *)
  let prog = ring_program ~niter:40 ~work:3_000_000 () in
  let _, _, data, result = profiled_run ~nprocs:4 prog in
  let expected = result.Exec.elapsed *. 200.0 *. 4.0 in
  let got = float_of_int data.Profdata.total_samples in
  check_bool "sample density"
    true
    (got > 0.5 *. expected && got < 1.5 *. expected);
  check_bool "few unattributed" true
    (data.Profdata.unattributed_samples * 10 < data.Profdata.total_samples + 10)

let test_attribution_targets_hot_vertex () =
  let prog = ring_program ~niter:50 ~work:2_000_000 () in
  let contraction, _, data, _ = profiled_run ~nprocs:4 prog in
  (* the "work" comp must absorb the bulk of sampled time on rank 0 *)
  let work_vertex =
    List.hd
      (Psg.find_all
         (fun v ->
           match v.Vertex.kind with
           | Vertex.Comp { label = Some "work"; _ } -> true
           | _ -> false)
         contraction.Contract.psg)
  in
  let total =
    Hashtbl.fold
      (fun _ (v : Perfvec.t) acc -> acc +. v.Perfvec.time)
      data.Profdata.vectors.(0) 0.0
  in
  match Profdata.vector_opt data ~rank:0 ~vertex:work_vertex.Vertex.id with
  | Some v ->
      check_bool "hot vertex dominates" true (v.Perfvec.time > 0.6 *. total)
  | None -> Alcotest.fail "work vertex has no data"

let test_wait_recorded_on_mpi_vertex () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"w.mmp" ~name:"w" () in
    Builder.func b "main" (fun () ->
        [
          Builder.branch b
            ~cond:(rank = i 0)
            (fun () -> [ Builder.comp b ~flops:(i 80_000_000) ~mem:(i 30_000_000) () ]);
          Builder.barrier b;
        ]);
    Builder.program b
  in
  let contraction, _, data, _ = profiled_run ~nprocs:4 prog in
  let barrier_vertex =
    List.hd (Psg.find_all Vertex.is_mpi contraction.Contract.psg)
  in
  (* non-delayed ranks accumulated wait at the barrier *)
  (match Profdata.vector_opt data ~rank:1 ~vertex:barrier_vertex.Vertex.id with
  | Some v ->
      check_bool "rank1 waited" true (v.Perfvec.wait > 0.001);
      check_int "calls counted" 1 v.Perfvec.calls
  | None -> Alcotest.fail "barrier vector missing on rank 1");
  match Profdata.vector_opt data ~rank:0 ~vertex:barrier_vertex.Vertex.id with
  | Some v -> check_bool "rank0 did not wait" true (v.Perfvec.wait < 0.001)
  | None -> ()

let test_record_prob_zero () =
  let prog = ring_program ~niter:10 () in
  let config = { Profiler.default_config with record_prob = 0.0 } in
  let _, _, data, _ = profiled_run ~config ~nprocs:4 prog in
  check_int "no comm records" 0 (Commrec.n_p2p data.Profdata.comm + Commrec.n_coll data.Profdata.comm)

let test_record_prob_one_dependence () =
  let prog = ring_program ~niter:10 () in
  let config = { Profiler.default_config with record_prob = 1.0 } in
  let _, _, data, _ = profiled_run ~config ~nprocs:4 prog in
  (* every rank's sendrecv edge to its left neighbour is recorded *)
  check_bool "p2p edges" true (Commrec.n_p2p data.Profdata.comm >= 4);
  check_int "one collective vertex" 1 (Commrec.n_coll data.Profdata.comm)

let test_icall_resolution () =
  let prog = recursion_program () in
  let _, _, data, _ = profiled_run ~nprocs:4 prog in
  let targets =
    Profdata.icall_resolutions data
    |> List.map (fun (r : Profdata.icall_resolution) -> r.target)
    |> List.sort_uniq compare
  in
  (* ranks 0,2 call alpha; ranks 1,3 call beta *)
  Alcotest.(check (list string)) "both targets" [ "alpha"; "beta" ] targets

let test_storage_accounting () =
  let prog = ring_program ~niter:10 () in
  let _, _, data, _ = profiled_run ~nprocs:8 prog in
  let bytes = Profdata.storage_bytes data in
  check_bool "positive" true (bytes > 0);
  (* kilobyte order for a toy program, not megabytes *)
  check_bool "small" true (bytes < 100_000);
  check_bool "touched vertices listed" true
    (List.length (Profdata.touched_vertices data) > 0)

let test_across_ranks () =
  let prog = ring_program ~niter:10 ~work:2_000_000 () in
  let contraction, _, data, _ = profiled_run ~nprocs:4 prog in
  let work_vertex =
    List.hd
      (Psg.find_all
         (fun v ->
           match v.Vertex.kind with
           | Vertex.Comp { label = Some "work"; _ } -> true
           | _ -> false)
         contraction.Contract.psg)
  in
  let per_rank = Profdata.across_ranks data ~vertex:work_vertex.Vertex.id in
  check_int "one slot per rank" 4 (Array.length per_rank);
  Array.iter
    (fun v -> check_bool "every rank sampled the hot loop" true (v <> None))
    per_rank

(* --- timeline --- *)

let timeline_run ?tconfig ?cost ?(nprocs = 4) prog =
  let _, _, _, index = static_of prog in
  let recorder = Timeline.create ?config:tconfig ~index ~nprocs () in
  let cfg = Exec.config ~nprocs ?cost ~tools:[ Timeline.tool recorder ] () in
  let result = Exec.run ~cfg prog in
  (Timeline.capture recorder, result)

let test_timeline_records () =
  let prog = ring_program ~niter:10 ~work:500_000 () in
  let tl, result = timeline_run ~nprocs:4 prog in
  check_int "nprocs" 4 tl.Timeline.nprocs;
  check_float "elapsed" result.Exec.elapsed tl.Timeline.elapsed;
  let has_kind p =
    Array.exists (fun iv -> p iv.Timeline.iv_kind) tl.Timeline.intervals
  in
  check_bool "compute intervals" true
    (has_kind (function Timeline.Compute _ -> true | _ -> false));
  check_bool "mpi intervals" true
    (has_kind (function Timeline.Mpi _ -> true | _ -> false));
  (* every rank contributed, and each per-rank stream is time-ordered *)
  for rank = 0 to 3 do
    let ivs =
      Array.to_list tl.Timeline.intervals
      |> List.filter (fun iv -> iv.Timeline.iv_rank = rank)
    in
    check_bool "rank has intervals" true (ivs <> []);
    let rec ordered = function
      | a :: (b :: _ as rest) ->
          a.Timeline.iv_start <= b.Timeline.iv_start && ordered rest
      | _ -> true
    in
    check_bool "rank stream ordered" true (ordered ivs)
  done;
  (* the ring sendrecv produced matched messages with sane timestamps *)
  check_bool "messages recorded" true (Array.length tl.Timeline.messages > 0);
  Array.iter
    (fun m ->
      check_bool "send precedes arrival" true
        (m.Timeline.msg_send_time <= m.Timeline.msg_arrival))
    tl.Timeline.messages;
  check_int "nothing dropped" 0 (Timeline.total_dropped tl)

let test_timeline_compression () =
  (* fig3's inner loops run the same comp vertex back to back, so the
     vertex-keyed merge must collapse those streaks *)
  let prog = fig3_program () in
  let tl, _ = timeline_run ~nprocs:4 prog in
  check_bool "merged some intervals" true (tl.Timeline.merged > 0);
  check_bool "a multi-iteration slice" true
    (Array.exists
       (fun iv -> iv.Timeline.iv_merged > 1)
       tl.Timeline.intervals)

let test_timeline_truncation () =
  let prog = ring_program ~niter:20 ~work:500_000 () in
  let full, _ = timeline_run ~nprocs:4 prog in
  let capped, _ =
    timeline_run ~tconfig:{ Timeline.max_events = 8 } ~nprocs:4 prog
  in
  check_bool "events dropped" true (Timeline.total_dropped capped > 0);
  check_bool "cap respected" true
    (Array.length capped.Timeline.intervals
     + Array.length capped.Timeline.messages
    <= 8);
  (* blocked-time accounting survives truncation untouched *)
  check_bool "some blocked time" true (Timeline.total_blocked full > 0.0);
  check_float "blocked preserved" (Timeline.total_blocked full)
    (Timeline.total_blocked capped)

let test_timeline_zero_overhead () =
  (* the recorder is an idealized observer: identical clocks either way *)
  let prog = ring_program ~niter:20 ~work:1_000_000 () in
  let bare = run ~nprocs:4 prog in
  let _, instrumented = timeline_run ~nprocs:4 prog in
  check_float "idealized observer" bare.Exec.elapsed instrumented.Exec.elapsed

(* profiler overhead is charged to the clocks *)
let test_profiler_overhead_positive () =
  let prog = ring_program ~niter:30 ~work:2_000_000 () in
  let bare = run ~nprocs:4 prog in
  let _, _, _, instrumented = profiled_run ~nprocs:4 prog in
  check_bool "overhead positive" true
    (instrumented.Exec.elapsed > bare.Exec.elapsed);
  check_bool "overhead below 20%" true
    (instrumented.Exec.elapsed < 1.2 *. bare.Exec.elapsed)

let () =
  Alcotest.run "profile"
    [
      ("perfvec", [ Alcotest.test_case "accumulate/merge" `Quick test_perfvec ]);
      ( "commrec",
        [
          Alcotest.test_case "p2p compression" `Quick test_commrec_compression;
          Alcotest.test_case "collective histogram" `Quick
            test_commrec_collectives;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "density" `Quick test_sampling_density;
          Alcotest.test_case "hot-vertex attribution" `Quick
            test_attribution_targets_hot_vertex;
          Alcotest.test_case "wait on MPI vertex" `Quick
            test_wait_recorded_on_mpi_vertex;
        ] );
      ( "interposition",
        [
          Alcotest.test_case "record_prob=0" `Quick test_record_prob_zero;
          Alcotest.test_case "record_prob=1 dependence" `Quick
            test_record_prob_one_dependence;
          Alcotest.test_case "icall resolution" `Quick test_icall_resolution;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "storage" `Quick test_storage_accounting;
          Alcotest.test_case "across ranks" `Quick test_across_ranks;
          Alcotest.test_case "overhead charged" `Quick
            test_profiler_overhead_positive;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "records intervals and messages" `Quick
            test_timeline_records;
          Alcotest.test_case "vertex-keyed compression" `Quick
            test_timeline_compression;
          Alcotest.test_case "truncation keeps blocked totals" `Quick
            test_timeline_truncation;
          Alcotest.test_case "zero overhead" `Quick
            test_timeline_zero_overhead;
        ] );
    ]
