(* Tests for PSG construction: intra-/inter-procedural analysis,
   contraction, statistics and the attribution index. *)

open Scalana_mlang
open Scalana_psg
open Testutil

let count psg pred = List.length (Psg.find_all pred psg)

(* --- intra --- *)

let test_intra_fig3 () =
  let prog = fig3_program () in
  let local_main = Intra.build (Ast.find_func prog "main") in
  (* root + loop1 + (comp, loop1_1(+comp), loop1_2(+comp), call, bcast) *)
  check_int "main vertices" 9 (Psg.n_vertices local_main);
  check_int "loops" 3 (count local_main Vertex.is_loop);
  check_int "comps" 3 (count local_main Vertex.is_comp);
  check_int "mpi" 1 (count local_main Vertex.is_mpi);
  check_int "callsites" 1 (count local_main Vertex.is_callsite);
  let local_foo = Intra.build (Ast.find_func prog "foo") in
  check_int "foo branch" 1 (count local_foo Vertex.is_branch);
  check_int "foo mpi" 2 (count local_foo Vertex.is_mpi)

let test_intra_exec_order () =
  let prog = fig3_program () in
  let psg = Intra.build (Ast.find_func prog "main") in
  (* pre-order: every vertex appears after its parent *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun id ->
      (match Psg.parent psg id with
      | Some parent ->
          check_bool "parent before child" true (Hashtbl.mem seen parent)
      | None -> ());
      Hashtbl.replace seen id ())
    (Psg.exec_order psg)

let test_sibling_navigation () =
  let prog = fig3_program () in
  let psg = Intra.build (Ast.find_func prog "main") in
  let root = Psg.root psg in
  match Psg.children psg root with
  | [ loop1 ] -> (
      match Psg.children psg loop1 with
      | first :: second :: _ ->
          check_bool "prev of first is none" true
            (Psg.prev_sibling psg first = None);
          (match Psg.prev_sibling psg second with
          | Some p -> check_int "prev sibling" first p
          | None -> Alcotest.fail "second has prev");
          (match Psg.next_sibling psg first with
          | Some n -> check_int "next sibling" second n
          | None -> Alcotest.fail "first has next");
          (match Psg.last_child psg loop1 with
          | Some last ->
              check_bool "last child has no next" true
                (Psg.next_sibling psg last = None)
          | None -> Alcotest.fail "loop has children")
      | _ -> Alcotest.fail "loop1 should have several children")
  | _ -> Alcotest.fail "root should have exactly loop1"

(* --- inter --- *)

let test_inter_inlines_direct_calls () =
  let prog = fig3_program () in
  let full = Inter.build prog in
  (* foo's branch and MPI pair appear inlined; no unresolved callsites *)
  check_int "no callsites" 0 (count full Vertex.is_callsite);
  check_int "branch inlined" 1 (count full Vertex.is_branch);
  check_int "mpi inlined" 3 (count full Vertex.is_mpi);
  (* inlined vertices carry the extended callpath *)
  let branch = List.hd (Psg.find_all Vertex.is_branch full) in
  check_int "callpath depth" 1 (List.length branch.Vertex.callpath)

let test_inter_recursion_cycle () =
  let prog = recursion_program () in
  let full = Inter.build prog in
  let rec_sites =
    Psg.find_all
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Callsite { recursive = true; _ } -> true
        | _ -> false)
      full
  in
  check_int "one recursive callsite" 1 (List.length rec_sites);
  let site = List.hd rec_sites in
  (match Psg.cycle_target full site.Vertex.id with
  | Some _ -> ()
  | None -> Alcotest.fail "recursive callsite should carry a cycle edge");
  (* the indirect call remains unresolved *)
  let indirect =
    Psg.find_all
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Callsite { callee = None; _ } -> true
        | _ -> false)
      full
  in
  check_int "one indirect callsite" 1 (List.length indirect)

let test_refine_indirect () =
  let prog = recursion_program () in
  let locals = Intra.build_all prog in
  let full = Inter.build ~locals prog in
  let site =
    List.hd
      (Psg.find_all
         (fun v ->
           match v.Vertex.kind with
           | Vertex.Callsite { callee = None; _ } -> true
           | _ -> false)
         full)
  in
  let before = Psg.n_vertices full in
  (match Inter.refine_indirect full ~locals ~callsite:site.Vertex.id ~target:"alpha" with
  | Some _ -> ()
  | None -> Alcotest.fail "first refinement should splice");
  check_bool "vertices grew" true (Psg.n_vertices full > before);
  (* idempotent *)
  (match Inter.refine_indirect full ~locals ~callsite:site.Vertex.id ~target:"alpha" with
  | None -> ()
  | Some _ -> Alcotest.fail "second refinement should be a no-op");
  (* second target splices separately *)
  (match Inter.refine_indirect full ~locals ~callsite:site.Vertex.id ~target:"beta" with
  | Some _ -> ()
  | None -> Alcotest.fail "beta should splice");
  match (Psg.vertex full site.Vertex.id).Vertex.kind with
  | Vertex.Callsite { targets; _ } ->
      check_bool "targets recorded" true
        (List.mem "alpha" targets && List.mem "beta" targets)
  | _ -> Alcotest.fail "site kind changed unexpectedly"


let test_psg_navigation_helpers () =
  let prog = fig3_program () in
  let psg = Inter.build prog in
  (* every non-root vertex has the root among its ancestors *)
  let root = Psg.root psg in
  Psg.iter
    (fun v ->
      if v.Vertex.id <> root then begin
        let anc = Psg.ancestors psg v.Vertex.id in
        check_bool "root is an ancestor" true (List.mem root anc)
      end)
    psg;
  (* loop_depth of a comp inside loop1_1 is 2 *)
  let sum_comp =
    List.find
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Comp { label = Some "sum"; _ } -> true
        | _ -> false)
      (Psg.find_all Vertex.is_comp psg)
  in
  check_int "nested loop depth" 2 (Psg.loop_depth psg sum_comp.Vertex.id);
  (* the 32-bytes-per-vertex memory model of Section VI-C *)
  check_int "memory model" (32 * Psg.n_vertices psg) (Psg.memory_bytes psg)

(* --- contraction --- *)

let test_contract_preserves_mpi () =
  List.iter
    (fun name ->
      let entry = Scalana_apps.Registry.find name in
      let prog = entry.make () in
      let full = Inter.build prog in
      let contraction = Contract.run full in
      let mpi_before = count full Vertex.is_mpi in
      let mpi_after = count contraction.Contract.psg Vertex.is_mpi in
      check_int (name ^ " mpi preserved") mpi_before mpi_after;
      check_bool
        (name ^ " contraction shrinks")
        true
        (Psg.n_vertices contraction.Contract.psg <= Psg.n_vertices full))
    Scalana_apps.Registry.names

let test_contract_merges_comps () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"c.mmp" ~name:"c" () in
  Builder.func b "main" (fun () ->
      [
        Builder.comp b ~flops:(i 1) ~mem:(i 1) ();
        Builder.comp b ~flops:(i 2) ~mem:(i 2) ();
        Builder.comp b ~flops:(i 3) ~mem:(i 3) ();
        Builder.barrier b;
        Builder.comp b ~flops:(i 4) ~mem:(i 4) ();
      ]);
    Builder.program b
  in
  let full = Inter.build prog in
  let c = Contract.run full in
  (* three leading comps merge into one; the barrier splits the run *)
  check_int "comps after" 2 (count c.Contract.psg Vertex.is_comp);
  let merged =
    Psg.find_all
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Comp { merged; _ } -> merged = 3
        | _ -> false)
      c.Contract.psg
  in
  check_int "merged count carried" 1 (List.length merged)

let test_contract_max_loop_depth () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"d.mmp" ~name:"d" () in
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~var:"a" ~count:(i 2) (fun () ->
            [
              Builder.loop b ~var:"bb" ~count:(i 2) (fun () ->
                  [
                    Builder.loop b ~var:"c" ~count:(i 2) (fun () ->
                        [ Builder.comp b ~flops:(i 1) ~mem:(i 1) () ]);
                  ]);
            ]);
        Builder.barrier b;
      ]);
    Builder.program b
  in
  let full = Inter.build prog in
  let deep = Contract.run ~max_loop_depth:10 full in
  check_int "all loops kept" 3 (count deep.Contract.psg Vertex.is_loop);
  let shallow = Contract.run ~max_loop_depth:2 full in
  check_int "third loop collapsed" 2 (count shallow.Contract.psg Vertex.is_loop);
  let flat = Contract.run ~max_loop_depth:0 full in
  check_int "no loops kept" 0 (count flat.Contract.psg Vertex.is_loop)

let test_contract_branch_hoists_loops () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"h.mmp" ~name:"h" () in
  Builder.func b "main" (fun () ->
      [
        Builder.branch b
          ~cond:(rank % i 4 = i 0)
          (fun () ->
            [
              Builder.loop b ~label:"inner" ~var:"j" ~count:(i 8) (fun () ->
                  [ Builder.comp b ~flops:(i 9) ~mem:(i 9) () ]);
            ]);
        Builder.barrier b;
      ]);
    Builder.program b
  in
  let full = Inter.build prog in
  let c = Contract.run full in
  (* the MPI-free branch vanishes but its loop survives *)
  check_int "branch dropped" 0 (count c.Contract.psg Vertex.is_branch);
  check_int "loop kept" 1 (count c.Contract.psg Vertex.is_loop)

let test_contract_keeps_branch_with_mpi () =
  let prog = fig3_program () in
  let full = Inter.build prog in
  let c = Contract.run full in
  check_int "branch with MPI kept" 1 (count c.Contract.psg Vertex.is_branch)

let test_orig_to_new_total () =
  let prog = fig3_program () in
  let full = Inter.build prog in
  let c = Contract.run full in
  (* every original vertex maps to a vertex of the contracted graph *)
  Psg.iter
    (fun v ->
      match Contract.new_id c v.Vertex.id with
      | Some nid ->
          check_bool "target exists" true
            (Psg.vertex_opt c.Contract.psg nid <> None)
      | None -> Alcotest.failf "vertex %d unmapped" v.Vertex.id)
    full

let test_contract_edge_cases () =
  let open Expr.Infix in
  (* MPI directly under root, plus a loop whose body is pure compute *)
  let prog =
    let b = Builder.create ~file:"e.mmp" ~name:"e" () in
    Builder.func b "main" (fun () ->
        [
          Builder.barrier b;
          Builder.loop b ~var:"k" ~count:(i 8) (fun () ->
              [
                Builder.comp b ~flops:(i 1) ~mem:(i 1) ();
                Builder.comp b ~flops:(i 2) ~mem:(i 2) ();
              ]);
          Builder.allreduce b ~bytes:(i 8);
        ]);
    Builder.program b
  in
  let full = Inter.build prog in
  let assert_total c =
    Psg.iter
      (fun v ->
        match Contract.new_id c v.Vertex.id with
        | Some nid ->
            check_bool "mapped vertex exists" true
              (Option.is_some (Psg.vertex_opt c.Contract.psg nid))
        | None -> Alcotest.failf "vertex %d unmapped" v.Vertex.id)
      full
  in
  let deep = Contract.run full in
  check_int "mpi under root survives" 2 (count deep.Contract.psg Vertex.is_mpi);
  (* the two comps merge: the loop body contracts to a single vertex *)
  check_int "loop body fully merged" 1 (count deep.Contract.psg Vertex.is_comp);
  assert_total deep;
  (* with depth 0 the loop itself is contracted away too *)
  let flat = Contract.run ~max_loop_depth:0 full in
  check_int "no loops at depth 0" 0 (count flat.Contract.psg Vertex.is_loop);
  check_int "mpi still preserved" 2 (count flat.Contract.psg Vertex.is_mpi);
  assert_total flat

let test_crosscheck_all_registry () =
  (* CFG-side structure recovery agrees with the PSG on every shipped
     app, not just the spot-checked ones *)
  List.iter
    (fun (e : Scalana_apps.Registry.entry) ->
      let prog = e.make () in
      List.iter
        (fun (f : Ast.func) ->
          match Intra.crosscheck f with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s/%s: %s" e.name f.fname msg)
        prog.funcs)
    Scalana_apps.Registry.all

(* --- data-dependence annotation --- *)

let datadep_fixture () =
  let open Expr.Infix in
  let b = Builder.create ~file:"dd.mmp" ~name:"dd" () in
  Builder.func b "main" (fun () ->
      [
        Builder.isend b ~dest:(rank + i 1) ~bytes:(i 8) ~req:"r0" ();
        Builder.irecv b ~bytes:(i 8) ~req:"r1" ();
        Builder.comp b ~flops:(i 1000) ~mem:(i 100) ();
        Builder.waitall b ~reqs:[ "r0"; "r1" ];
      ]);
  Builder.program b

let test_datadep_edges () =
  let prog = datadep_fixture () in
  let full = Inter.build prog in
  let contraction = Contract.run full in
  let summary = Datadep.annotate ~full ~contraction prog in
  let psg = contraction.Contract.psg in
  check_bool "edges recorded" true (summary.Datadep.edges >= 2);
  check_int "edge counter matches" summary.Datadep.edges
    (Psg.n_data_dep_edges psg);
  let find label =
    match
      Psg.find_all (fun v -> Vertex.label v = label) psg
    with
    | [ v ] -> v.Vertex.id
    | _ -> Alcotest.failf "expected one %s vertex" label
  in
  let isend = find "MPI_Isend" in
  let irecv = find "MPI_Irecv" in
  let waitall = find "MPI_Waitall" in
  let deps = Psg.data_deps psg waitall in
  check_bool "waitall depends on its isend" true (List.mem isend deps);
  check_bool "waitall depends on its irecv" true (List.mem irecv deps);
  (* the intervening comp carries no value into the waitall *)
  List.iter
    (fun (v : Vertex.t) ->
      check_bool "comp not a dependency" true (not (List.mem v.Vertex.id deps)))
    (Psg.find_all Vertex.is_comp psg)

let test_datadep_chains_through_let () =
  let open Expr.Infix in
  (* the let produces no vertex: the use must chain through it to the
     defining loop header *)
  let prog =
    let b = Builder.create ~file:"dl.mmp" ~name:"dl" () in
    Builder.func b "main" (fun () ->
        [
          Builder.loop b ~var:"it" ~count:(i 4) (fun () ->
              [
                Builder.barrier b;
                Builder.let_ b "w" (v "it" * i 100);
                Builder.comp b ~flops:(v "w") ~mem:(i 1) ();
              ]);
        ]);
    Builder.program b
  in
  let full = Inter.build prog in
  let contraction = Contract.run full in
  ignore (Datadep.annotate ~full ~contraction prog);
  let psg = contraction.Contract.psg in
  let loop =
    match Psg.find_all Vertex.is_loop psg with
    | [ v ] -> v.Vertex.id
    | _ -> Alcotest.fail "expected one loop"
  in
  let comp =
    match Psg.find_all Vertex.is_comp psg with
    | [ v ] -> v.Vertex.id
    | _ -> Alcotest.fail "expected one comp"
  in
  check_bool "comp chains through the let to the loop" true
    (List.mem loop (Psg.data_deps psg comp))

(* --- stats --- *)

let test_stats_table2_shape () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let prog = entry.make () in
  let full = Inter.build prog in
  let c = Contract.run full in
  let stats =
    Stats.of_psgs ~program:"zeus-mp" ~lines:(Ast.line_count prog) ~full
      ~contracted:c.Contract.psg ()
  in
  check_bool "vbc >= vac" true (stats.Stats.vbc >= stats.Stats.vac);
  check_bool "has loops" true (stats.Stats.loops > 0);
  check_bool "has mpi" true (stats.Stats.mpis > 0);
  check_bool "kloc positive" true (stats.Stats.kloc > 0.0);
  check_bool "ratio in [0,1]" true
    (Stats.contraction_ratio stats >= 0.0 && Stats.contraction_ratio stats <= 1.0)

(* --- index --- *)

let test_index_exact_and_fallback () =
  let prog = recursion_program () in
  let locals = Intra.build_all prog in
  let full = Inter.build ~locals prog in
  let contraction = Contract.run full in
  let index = Index.build ~full ~contraction in
  check_bool "index nonempty" true (Index.size index > 0);
  (* exact: the comp of walk at depth one *)
  let walk_comp =
    Psg.find_all
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Comp { label = Some l; _ } ->
            String.length l >= 4 && String.sub l 0 4 = "walk"
        | _ -> false)
      full
    |> List.hd
  in
  (match
     Index.exact index ~callpath:walk_comp.Vertex.callpath
       ~loc:walk_comp.Vertex.loc
   with
  | Some _ -> ()
  | None -> Alcotest.fail "exact lookup failed");
  (* fallback: a recursive re-entry (extra synthetic frame) still lands *)
  let deeper = walk_comp.Vertex.callpath @ [ walk_comp.Vertex.loc ] in
  (match Index.find index ~callpath:deeper ~loc:walk_comp.Vertex.loc with
  | Some _ -> ()
  | None -> Alcotest.fail "recursive fallback failed");
  (* a loc that exists nowhere *)
  match
    Index.find index ~callpath:[] ~loc:(Loc.v ~file:"nope.mmp" ~line:1)
  with
  | None -> ()
  | Some _ -> Alcotest.fail "bogus loc should not resolve"

let test_index_after_refinement () =
  let prog = recursion_program () in
  let locals = Intra.build_all prog in
  let full = Inter.build ~locals prog in
  let contraction = Contract.run full in
  let index = Index.build ~full ~contraction in
  let site =
    List.hd
      (Psg.find_all
         (fun v ->
           match v.Vertex.kind with
           | Vertex.Callsite { callee = None; _ } -> true
           | _ -> false)
         contraction.Contract.psg)
  in
  (match
     Inter.refine_indirect contraction.Contract.psg ~locals
       ~callsite:site.Vertex.id ~target:"alpha"
   with
  | Some sub_root ->
      Index.index_contracted_subtree index sub_root;
      (* the alpha comp is now attributable under the icall frame *)
      let alpha = Ast.find_func prog "alpha" in
      let comp_loc =
        match alpha.fbody with s :: _ -> s.Ast.loc | [] -> assert false
      in
      let callpath = site.Vertex.callpath @ [ site.Vertex.loc ] in
      (match Index.find index ~callpath ~loc:comp_loc with
      | Some _ -> ()
      | None -> Alcotest.fail "refined vertex not indexed")
  | None -> Alcotest.fail "refinement failed")

(* property: contraction is idempotent on vertex counts *)
let contract_idempotent =
  qtest ~count:20 "contraction idempotent"
    QCheck2.Gen.(int_range 0 10)
    (fun depth ->
      let entry = Scalana_apps.Registry.find "cg" in
      let prog = entry.make () in
      let full = Inter.build prog in
      let once = Contract.run ~max_loop_depth:depth full in
      let twice = Contract.run ~max_loop_depth:depth once.Contract.psg in
      Psg.n_vertices once.Contract.psg = Psg.n_vertices twice.Contract.psg)

let () =
  Alcotest.run "psg"
    [
      ( "intra",
        [
          Alcotest.test_case "fig3 local graphs" `Quick test_intra_fig3;
          Alcotest.test_case "pre-order" `Quick test_intra_exec_order;
          Alcotest.test_case "sibling navigation" `Quick
            test_sibling_navigation;
        ] );
      ( "inter",
        [
          Alcotest.test_case "inlines direct calls" `Quick
            test_inter_inlines_direct_calls;
          Alcotest.test_case "recursion becomes cycle" `Quick
            test_inter_recursion_cycle;
          Alcotest.test_case "indirect refinement" `Quick test_refine_indirect;
        ] );
      ( "navigation",
        [ Alcotest.test_case "ancestors/depth/memory" `Quick
            test_psg_navigation_helpers ] );
      ( "contract",
        [
          Alcotest.test_case "preserves MPI (all apps)" `Quick
            test_contract_preserves_mpi;
          Alcotest.test_case "merges adjacent comps" `Quick
            test_contract_merges_comps;
          Alcotest.test_case "MaxLoopDepth" `Quick test_contract_max_loop_depth;
          Alcotest.test_case "MPI-free branch hoists loops" `Quick
            test_contract_branch_hoists_loops;
          Alcotest.test_case "branch with MPI kept" `Quick
            test_contract_keeps_branch_with_mpi;
          Alcotest.test_case "orig->new total" `Quick test_orig_to_new_total;
          Alcotest.test_case "edge cases" `Quick test_contract_edge_cases;
          contract_idempotent;
        ] );
      ( "crosscheck",
        [
          Alcotest.test_case "all registry apps" `Quick
            test_crosscheck_all_registry;
        ] );
      ( "datadep",
        [
          Alcotest.test_case "waitall edges" `Quick test_datadep_edges;
          Alcotest.test_case "chains through let" `Quick
            test_datadep_chains_through_let;
        ] );
      ("stats", [ Alcotest.test_case "table2 shape" `Quick test_stats_table2_shape ]);
      ( "index",
        [
          Alcotest.test_case "exact and fallback" `Quick
            test_index_exact_and_fallback;
          Alcotest.test_case "after refinement" `Quick
            test_index_after_refinement;
        ] );
    ]
