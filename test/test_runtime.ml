(* Tests for the discrete-event MPI runtime: heap, network and cost
   models, message matching, collectives, waits, injection, determinism. *)

open Scalana_mlang
open Scalana_runtime
open Testutil

(* --- heap --- *)

let heap_sorted =
  qtest ~count:200 "heap pops sorted"
    QCheck2.Gen.(list_size (int_range 0 100) (float_bound_exclusive 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let out = drain [] in
      List.length out = List.length keys
      && List.sort compare out = out)

let test_heap_empty () =
  let h = Heap.create () in
  check_bool "empty" true (Heap.is_empty h);
  check_bool "pop none" true (Heap.pop h = None);
  Heap.push h 1.0 7;
  check_int "length" 1 (Heap.length h);
  match Heap.pop h with
  | Some (k, v) ->
      check_float "key" 1.0 k;
      check_int "value" 7 v
  | None -> Alcotest.fail "pop"

(* Key lists for the Indexed properties: up to 32 keys drawn from a
   coarse grid so duplicates (the tie cases) are common. *)
let keys_arb = Prop.list_of ~max_len:32 (Prop.float_range 0.0 16.0)

let drain_indexed h =
  let rec go acc =
    if Heap.Indexed.is_empty h then List.rev acc
    else
      let k = Heap.Indexed.min_key h in
      let v = Heap.Indexed.pop_val h in
      go ((k, v) :: acc)
  in
  go []

let sorted_keys kvs =
  let ks = List.map fst kvs in
  List.sort compare ks = ks

let heap_indexed_sorted =
  Prop.test ~count:300 "indexed heap pops sorted" keys_arb (fun keys ->
      let n = List.length keys in
      let h = Heap.Indexed.create n in
      List.iteri (fun i k -> Heap.Indexed.push h k i) keys;
      let out = drain_indexed h in
      sorted_keys out
      && List.sort compare (List.map snd out) = List.init n Fun.id)

(* The doc's frozen-contract claim, verified directly: under the same
   push sequence both heap variants evolve the same array layout, so
   their pop sequences agree payload-for-payload — including the tie
   order among equal keys. *)
let heap_indexed_matches_plain =
  Prop.test ~count:300 "indexed tie order = plain heap" keys_arb (fun keys ->
      let n = List.length keys in
      let plain = Heap.create () in
      let idx = Heap.Indexed.create n in
      List.iteri
        (fun i k ->
          Heap.push plain k i;
          Heap.Indexed.push idx k i)
        keys;
      let rec agree () =
        let a = Heap.pop_val plain in
        let b = Heap.Indexed.pop_val idx in
        a = b && (a = -1 || agree ())
      in
      agree ())

let heap_decrease_key =
  Prop.test ~count:300 "decrease_key preserves invariant"
    (Prop.pair keys_arb (Prop.list_of ~max_len:16 (Prop.int_range 0 1023)))
    (fun (keys, picks) ->
      let n = List.length keys in
      let h = Heap.Indexed.create n in
      List.iteri (fun i k -> Heap.Indexed.push h k i) keys;
      let expected = Array.of_list keys in
      List.iter
        (fun pick ->
          if n > 0 then begin
            let v = pick mod n in
            let k = Heap.Indexed.key h v /. 2.0 in
            Heap.Indexed.decrease_key h k v;
            expected.(v) <- k
          end)
        picks;
      let out = drain_indexed h in
      sorted_keys out
      && List.for_all (fun (k, v) -> k = expected.(v)) out
      && List.length out = n)

let heap_replace_min =
  Prop.test ~count:300 "replace_min = pop+push"
    (Prop.pair keys_arb (Prop.float_range 0.0 16.0))
    (fun (keys, k') ->
      let n = List.length keys in
      n = 0
      ||
      let h = Heap.Indexed.create n in
      List.iteri (fun i k -> Heap.Indexed.push h k i) keys;
      let v = Heap.Indexed.min_val h in
      Heap.Indexed.replace_min h k' v;
      let out = drain_indexed h in
      sorted_keys out
      && List.length out = n
      && List.exists (fun (k, pv) -> pv = v && k = k') out)

let test_heap_indexed_errors () =
  let h = Heap.Indexed.create 4 in
  Heap.Indexed.push h 5.0 2;
  (match Heap.Indexed.push h 1.0 2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate push");
  (match Heap.Indexed.decrease_key h 9.0 2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "key increase");
  (match Heap.Indexed.decrease_key h 1.0 3 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "absent payload");
  Heap.Indexed.decrease_key h 1.0 2;
  check_float "decreased" 1.0 (Heap.Indexed.key h 2);
  check_int "pops it" 2 (Heap.Indexed.pop_val h);
  match Heap.Indexed.replace_min h 0.0 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "replace_min on empty"

(* --- pmu / cost model --- *)

let test_pmu_arith () =
  let a = { Pmu.tot_ins = 1.0; tot_lst_ins = 2.0; tot_cyc = 3.0; cache_miss = 4.0; fp_ins = 5.0 } in
  let s = Pmu.add a (Pmu.scale 2.0 a) in
  check_float "ins" 3.0 s.Pmu.tot_ins;
  check_float "cyc" 9.0 s.Pmu.tot_cyc;
  check_bool "zero" true (Pmu.is_zero Pmu.zero);
  check_float "get" 4.0 (Pmu.get Pmu.Cache_miss a);
  check_int "metrics" 5 (List.length Pmu.all_metrics)

let test_costmodel () =
  let w = Ast.workload ~flops:(Expr.Int 1000) ~mem:(Expr.Int 500) ~locality:1.0 () in
  let env = Expr.env ~rank:0 ~nprocs:4 ~params:[] ~vars:[] in
  let sec, pmu = Costmodel.comp_cost Costmodel.default ~rank:0 ~env w in
  (* locality 1.0: no misses; cycles = ins / ipc *)
  check_float "no misses" 0.0 pmu.Pmu.cache_miss;
  close "cycles" 750.0 pmu.Pmu.tot_cyc;
  close "seconds" (750.0 /. 2.5e9) sec;
  (* locality 0: every access misses, time grows *)
  let w2 = Ast.workload ~flops:(Expr.Int 1000) ~mem:(Expr.Int 500) ~locality:0.0 () in
  let sec2, pmu2 = Costmodel.comp_cost Costmodel.default ~rank:0 ~env w2 in
  check_float "all miss" 500.0 pmu2.Pmu.cache_miss;
  check_bool "slower" true (sec2 > sec)

let test_heterogeneous_speed () =
  let cm = Costmodel.heterogeneous () in
  let speeds = List.init 128 cm.Costmodel.core_speed in
  let slow = List.filter (fun s -> s > 1.2) speeds in
  check_bool "some slow cores" true (List.length slow > 0);
  check_bool "minority slow" true (List.length slow < 32);
  check_bool "first four fast" true
    (List.for_all (fun s -> s < 1.2) [ cm.core_speed 0; cm.core_speed 1; cm.core_speed 2; cm.core_speed 3 ])

let test_network_model () =
  let net = Network.default in
  check_bool "latency floor" true (Network.transfer_time net 0 >= net.latency);
  check_bool "monotone" true
    (Network.transfer_time net 1_000_000 > Network.transfer_time net 1_000);
  check_bool "eager small" true (Network.is_eager net 100);
  check_bool "rendezvous large" true (not (Network.is_eager net 10_000_000));
  check_int "log2_ceil 1" 0 (Network.log2_ceil 1);
  check_int "log2_ceil 8" 3 (Network.log2_ceil 8);
  check_int "log2_ceil 9" 4 (Network.log2_ceil 9);
  let t8 = Network.collective_time net ~nprocs:8 ~bytes:8 (Ast.Allreduce { bytes = Expr.Int 8 }) in
  let t64 = Network.collective_time net ~nprocs:64 ~bytes:8 (Ast.Allreduce { bytes = Expr.Int 8 }) in
  check_bool "collectives grow with P" true (t64 > t8);
  match Network.collective_time net ~nprocs:8 ~bytes:8 (Ast.Send { dest = Expr.Int 0; tag = Expr.Int 0; bytes = Expr.Int 0 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "send is not a collective"

(* --- programs for matching semantics --- *)

let two_rank_program builder_body =
  let b = Builder.create ~file:"t.mmp" ~name:"t" () in
  Builder.func b "main" (fun () -> builder_body b);
  Builder.program b

let test_blocking_pair () =
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.branch b
            ~cond:(rank = i 0)
            ~else_:(fun () ->
              [ Builder.recv b ~src:(i 0) ~tag:(i 5) ~bytes:(i 1024) () ])
            (fun () ->
              [ Builder.send b ~dest:(i 1) ~tag:(i 5) ~bytes:(i 1024) () ]);
        ])
  in
  let r = run ~nprocs:2 prog in
  check_int "messages" 1 r.Exec.messages;
  check_bool "recv later than send" true
    (r.Exec.rank_finish.(1) >= r.Exec.rank_finish.(0))

let test_wildcard_recv () =
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.branch b
            ~cond:(rank = i 0)
            ~else_:(fun () -> [ Builder.recv b ~bytes:(i 64) () ])
            (fun () ->
              [ Builder.send b ~dest:(i 1) ~tag:(i 77) ~bytes:(i 64) () ]);
        ])
  in
  ignore (run ~nprocs:2 prog)

let test_tag_selectivity () =
  (* rank0 sends tag 1 then tag 2; rank1 receives tag 2 first, then 1 *)
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.branch b
            ~cond:(rank = i 0)
            ~else_:(fun () ->
              [
                Builder.recv b ~src:(i 0) ~tag:(i 2) ~bytes:(i 10) ();
                Builder.recv b ~src:(i 0) ~tag:(i 1) ~bytes:(i 10) ();
              ])
            (fun () ->
              [
                Builder.send b ~dest:(i 1) ~tag:(i 1) ~bytes:(i 10) ();
                Builder.send b ~dest:(i 1) ~tag:(i 2) ~bytes:(i 10) ();
              ]);
        ])
  in
  ignore (run ~nprocs:2 prog)

let test_deadlock_detection () =
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [ Builder.recv b ~src:((rank + i 1) % np) ~tag:(i 0) ~bytes:(i 8) () ])
  in
  match run ~nprocs:2 prog with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Exec.Deadlock _ -> ()

let test_collective_mismatch () =
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.branch b
            ~cond:(rank = i 0)
            ~else_:(fun () -> [ Builder.allreduce b ~bytes:(i 8) ])
            (fun () -> [ Builder.barrier b ]);
        ])
  in
  match run ~nprocs:2 prog with
  | _ -> Alcotest.fail "expected mismatch error"
  | exception Invalid_argument _ -> ()

let test_send_out_of_range () =
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [ Builder.send b ~dest:(i 9) ~tag:(i 0) ~bytes:(i 8) () ])
  in
  match run ~nprocs:2 prog with
  | _ -> Alcotest.fail "expected range error"
  | exception Invalid_argument _ -> ()

let test_self_send () =
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.isend b ~dest:rank ~tag:(i 3) ~bytes:(i 32) ~req:"s" ();
          Builder.recv b ~src:rank ~tag:(i 3) ~bytes:(i 32) ();
          Builder.wait b ~req:"s";
        ])
  in
  ignore (run ~nprocs:2 prog)

let test_nonblocking_overlap () =
  (* irecv posted before the matching send exists; wait collects it *)
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.irecv b ~src:((rank + i 1) % np) ~tag:(i 1) ~bytes:(i 256)
            ~req:"r" ();
          Builder.comp b ~flops:(i 200_000) ~mem:(i 100_000) ();
          Builder.send b
            ~dest:((rank - i 1 + np) % np)
            ~tag:(i 1) ~bytes:(i 256) ();
          Builder.wait b ~req:"r";
        ])
  in
  let r = run ~nprocs:4 prog in
  check_int "all messages" 4 r.Exec.messages

let test_wait_unposted_request () =
  let prog = two_rank_program (fun b -> [ Builder.wait b ~req:"nope" ]) in
  match run ~nprocs:2 prog with
  | _ -> Alcotest.fail "expected runtime error"
  | exception Exec.Runtime_error _ -> ()

let test_rendezvous_blocks_sender () =
  (* a rendezvous-sized send completes only when the receiver posts; the
     receiver delays by computing first *)
  let big = 1_000_000 in
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.branch b
            ~cond:(rank = i 0)
            ~else_:(fun () ->
              [
                Builder.comp b ~flops:(i 50_000_000) ~mem:(i 10_000_000) ();
                Builder.recv b ~src:(i 0) ~tag:(i 9) ~bytes:(i big) ();
              ])
            (fun () ->
              [ Builder.send b ~dest:(i 1) ~tag:(i 9) ~bytes:(i big) () ]);
        ])
  in
  let r = run ~nprocs:2 prog in
  (* sender waited for the receiver's compute phase *)
  check_bool "sender waited" true (r.Exec.wait_seconds.(0) > 0.001)

let test_eager_sender_not_blocked () =
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.branch b
            ~cond:(rank = i 0)
            ~else_:(fun () ->
              [
                Builder.comp b ~flops:(i 50_000_000) ~mem:(i 10_000_000) ();
                Builder.recv b ~src:(i 0) ~tag:(i 9) ~bytes:(i 100) ();
              ])
            (fun () ->
              [ Builder.send b ~dest:(i 1) ~tag:(i 9) ~bytes:(i 100) () ]);
        ])
  in
  let r = run ~nprocs:2 prog in
  check_bool "eager sender free" true (r.Exec.wait_seconds.(0) < 0.0001)

let test_collective_synchronizes () =
  (* rank-dependent work, then a barrier: everyone leaves together *)
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.comp b
            ~flops:((rank + i 1) * i 10_000_000)
            ~mem:((rank + i 1) * i 5_000_000)
            ();
          Builder.barrier b;
        ])
  in
  let r = run ~nprocs:4 prog in
  let finish0 = r.Exec.rank_finish.(0) and finish3 = r.Exec.rank_finish.(3) in
  close ~eps:1e-3 "finish together" finish0 finish3;
  (* the fast rank waited, the slow one did not *)
  check_bool "rank0 waited" true (r.Exec.wait_seconds.(0) > r.Exec.wait_seconds.(3))

let test_injection_accounting () =
  let prog = ring_program ~niter:5 () in
  let base = run ~nprocs:4 prog in
  let inject = Inject.create [ Inject.delay ~ranks:[ 2 ] 0.01 ] in
  let delayed = run ~nprocs:4 ~inject prog in
  (* 5 iterations x 0.01s *)
  close ~eps:0.05 "elapsed grows by 5x10ms"
    (base.Exec.elapsed +. 0.05)
    delayed.Exec.elapsed;
  check_bool "others wait" true (delayed.Exec.wait_seconds.(0) > 0.04)

let test_injection_every () =
  let inj = Inject.create [ Inject.delay ~every:2 1.0 ] in
  let loc = Loc.v ~file:"x" ~line:1 in
  let e1 = Inject.extra inj ~rank:0 ~loc in
  let e2 = Inject.extra inj ~rank:0 ~loc in
  let e3 = Inject.extra inj ~rank:0 ~loc in
  let e4 = Inject.extra inj ~rank:0 ~loc in
  check_float "1st skipped" 0.0 e1;
  check_float "2nd applies" 1.0 e2;
  check_float "3rd skipped" 0.0 e3;
  check_float "4th applies" 1.0 e4

let test_determinism () =
  let prog = Testutil.fig3_program () in
  let r1 = run ~nprocs:8 prog in
  let r2 = run ~nprocs:8 prog in
  check_float "same elapsed" r1.Exec.elapsed r2.Exec.elapsed;
  check_int "same events" r1.Exec.events r2.Exec.events;
  check_int "same messages" r1.Exec.messages r2.Exec.messages

let test_pmu_accumulation () =
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.loop b ~var:"k" ~count:(i 10) (fun () ->
              [ Builder.comp b ~flops:(i 1000) ~mem:(i 500) ~locality:1.0 () ]);
        ])
  in
  let r = run ~nprocs:2 prog in
  close "flops accumulated" 10_000.0 r.Exec.comp_pmu.(0).Pmu.fp_ins;
  close "lst accumulated" 5_000.0 r.Exec.comp_pmu.(0).Pmu.tot_lst_ins

let test_recursion_and_icall_run () =
  let r = run ~nprocs:4 (Testutil.recursion_program ()) in
  check_bool "finished" true (r.Exec.elapsed > 0.0)

let test_large_scale_smoke () =
  let prog = ring_program ~niter:2 ~work:1000 () in
  let r = run ~nprocs:2048 prog in
  check_int "all ranks" 2048 (Array.length r.Exec.rank_finish);
  check_int "messages" (2048 * 2) r.Exec.messages

let test_sendrecv_ring_rotation () =
  let prog = ring_program ~niter:1 () in
  let r = run ~nprocs:8 prog in
  (* one sendrecv per rank per iteration: one message each *)
  check_int "messages" 8 r.Exec.messages

let test_event_budget () =
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.loop b ~var:"k" ~count:(i 1_000_000) (fun () ->
              [ Builder.comp b ~flops:(i 1) ~mem:(i 0) () ]);
        ])
  in
  let cfg = Exec.config ~nprocs:2 ~max_events:10_000 () in
  match Exec.run ~cfg prog with
  | _ -> Alcotest.fail "expected event budget error"
  | exception Exec.Runtime_error _ -> ()



let test_all_collectives_run () =
  let prog =
    let open Expr.Infix in
    two_rank_program (fun b ->
        [
          Builder.comp b ~flops:((rank + i 1) * i 5_000_000) ~mem:(i 1_000_000) ();
          Builder.bcast b ~root:(i 1) ~bytes:(i 4096) ();
          Builder.reduce b ~root:(i 0) ~bytes:(i 4096) ();
          Builder.allgather b ~bytes:(i 512);
          Builder.alltoall b ~bytes:(i 256);
          Builder.allreduce b ~bytes:(i 8);
          Builder.barrier b;
        ])
  in
  let r = run ~nprocs:8 prog in
  (* collectives are synchronizing and send no point-to-point messages *)
  check_int "no p2p messages" 0 r.Exec.messages;
  let f0 = r.Exec.rank_finish.(0) and f7 = r.Exec.rank_finish.(7) in
  close ~eps:1e-3 "ranks finish together" f0 f7;
  (* six collectives: every rank joins each one *)
  check_bool "waits recorded on fast ranks" true (r.Exec.wait_seconds.(0) > 0.0)

let test_collective_cost_grows_with_bytes () =
  let mk bytes =
    let open Expr.Infix in
    two_rank_program (fun b -> [ Builder.alltoall b ~bytes:(i bytes) ])
  in
  let small = (run ~nprocs:8 (mk 64)).Exec.elapsed in
  let large = (run ~nprocs:8 (mk 4_000_000)).Exec.elapsed in
  check_bool "bigger payload, longer collective" true (large > small)

(* Random programs using only deadlock-free communication (collectives)
   plus local structure must always terminate, deterministically. *)
let safe_program_gen : Ast.program QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        map
          (fun n ->
            `Comp (max 1 n))
          (int_bound 100_000);
        return `Barrier;
        map (fun b -> `Allreduce (max 1 b)) (int_bound 4096);
        map (fun b -> `Bcast (max 1 b)) (int_bound 4096);
      ]
  in
  let rec build depth =
    if depth = 0 then map (fun l -> `Leaf l) leaf
    else
      oneof
        [
          map (fun l -> `Leaf l) leaf;
          map2 (fun n body -> `Loop (1 + (n mod 3), body))
            (int_bound 2)
            (list_size (int_range 1 3) (build (depth - 1)));
          map2 (fun c body -> `Branch (c, body))
            (int_bound 3)
            (list_size (int_range 1 2) (build (depth - 1)));
        ]
  in
  map
    (fun shapes ->
      let b = Builder.create ~file:"rand.mmp" ~name:"rand" () in
      let open Expr.Infix in
      let fresh =
        let c = ref 0 in
        fun () -> incr c; Printf.sprintf "v%d" !c
      in
      let rec stmt = function
        | `Leaf (`Comp n) -> Builder.comp b ~flops:(i n) ~mem:(i Stdlib.(n / 2)) ()
        | `Leaf `Barrier -> Builder.barrier b
        | `Leaf (`Allreduce n) -> Builder.allreduce b ~bytes:(i n)
        | `Leaf (`Bcast n) -> Builder.bcast b ~bytes:(i n) ()
        | `Loop (n, body) ->
            Builder.loop b ~var:(fresh ()) ~count:(i n) (fun () ->
                List.map stmt body)
        | `Branch (c, body) ->
            (* rank-dependent branches are fine: collectives inside a
               rank-dependent branch could deadlock, so the condition
               here is rank-independent *)
            Builder.branch b ~cond:(np > i c) (fun () -> List.map stmt body)
      in
      Builder.func b "main" (fun () -> List.map stmt shapes);
      Builder.program b)
    (list_size (int_range 1 5) (build 2))

(* --- fault injection --- *)

let run_faulted ?(nprocs = 4) plan ~attempt program =
  let armed = Faults.arm plan ~nprocs ~attempt in
  let cfg = Exec.config ~nprocs ~faults:armed () in
  Exec.run ~cfg program

let test_fault_kill_strands_peers () =
  let prog = ring_program () in
  let plan = Faults.plan [ Faults.kill_rank ~rank:1 ~after:1e-6 () ] in
  let r = run_faulted ~nprocs:4 plan ~attempt:1 prog in
  check_bool "rank 1 killed" true (List.mem 1 r.Exec.killed_ranks);
  (* the ring couples every rank: the survivors end up stranded on the
     dead one instead of raising Deadlock *)
  check_bool "peers stranded, not deadlocked" true
    (r.Exec.stranded_ranks <> []);
  check_bool "killed rank not stranded" true
    (not (List.mem 1 r.Exec.stranded_ranks));
  (* without the fault the same program completes cleanly *)
  let clean = run ~nprocs:4 prog in
  check_bool "clean run unaffected" true
    (clean.Exec.killed_ranks = [] && clean.Exec.stranded_ranks = [])

let test_fault_kill_after_end_is_noop () =
  let prog = ring_program () in
  let clean = run ~nprocs:4 prog in
  let plan =
    Faults.plan
      [ Faults.kill_rank ~rank:1 ~after:(clean.Exec.elapsed +. 1.0) () ]
  in
  let r = run_faulted ~nprocs:4 plan ~attempt:1 prog in
  check_bool "no kill" true (r.Exec.killed_ranks = []);
  check_float "elapsed unchanged" clean.Exec.elapsed r.Exec.elapsed

let test_fault_clock_skew () =
  let prog = ring_program () in
  let clean = run ~nprocs:4 prog in
  let plan = Faults.plan [ Faults.clock_skew ~rank:0 ~factor:4.0 ] in
  let r = run_faulted ~nprocs:4 plan ~attempt:1 prog in
  check_bool "skewed run slower" true (r.Exec.elapsed > clean.Exec.elapsed);
  check_bool "nobody killed" true (r.Exec.killed_ranks = [])

let test_fault_determinism () =
  (* same (seed, nprocs, attempt): byte-identical simulation results,
     probabilistic faults included *)
  let prog = ring_program () in
  let plan =
    Faults.plan ~seed:11
      [
        Faults.kill_rank ~prob:0.5 ~rank:2 ~after:1e-4 ();
        Faults.clock_skew ~rank:3 ~factor:1.5;
      ]
  in
  let r1 = run_faulted ~nprocs:5 plan ~attempt:1 prog in
  let r2 = run_faulted ~nprocs:5 plan ~attempt:1 prog in
  check_float "elapsed equal" r1.Exec.elapsed r2.Exec.elapsed;
  check_int "events equal" r1.Exec.events r2.Exec.events;
  Alcotest.(check (list int))
    "kills equal"
    (List.sort compare r1.Exec.killed_ranks)
    (List.sort compare r2.Exec.killed_ranks);
  Alcotest.(check (list int))
    "stranded equal"
    (List.sort compare r1.Exec.stranded_ranks)
    (List.sort compare r2.Exec.stranded_ranks)

let test_fault_draws_keyed_on_attempt () =
  (* a probabilistic kill is re-drawn per attempt: across many attempts
     both outcomes occur, and each attempt's draw is stable *)
  let plan = Faults.plan ~seed:3 [ Faults.kill_rank ~prob:0.5 ~rank:0 ~after:0.1 () ] in
  let draw attempt =
    Faults.kill_time (Faults.arm plan ~nprocs:4 ~attempt) ~rank:0 <> None
  in
  let outcomes = List.init 32 (fun i -> draw (i + 1)) in
  check_bool "some attempts kill" true (List.mem true outcomes);
  check_bool "some attempts spare" true (List.mem false outcomes);
  List.iteri
    (fun i o ->
      check_bool
        (Printf.sprintf "attempt %d stable" (i + 1))
        o (draw (i + 1)))
    outcomes

let test_fault_poison_determinism () =
  let plan = Faults.plan ~seed:5 [ Faults.poison_metric ~prob:0.3 `Nan ] in
  let a = Faults.arm plan ~nprocs:8 ~attempt:1 in
  let b = Faults.arm plan ~nprocs:8 ~attempt:1 in
  let hits armed =
    List.concat_map
      (fun rank ->
        List.filter_map
          (fun vertex ->
            match Faults.poison armed ~rank ~vertex with
            | Some _ -> Some (rank, vertex)
            | None -> None)
          (List.init 50 Fun.id))
      (List.init 8 Fun.id)
  in
  let ha = hits a and hb = hits b in
  check_bool "some vertices poisoned" true (ha <> []);
  check_bool "not all vertices poisoned" true (List.length ha < 400);
  check_bool "draws identical" true (ha = hb);
  (* drop_scale answers from the plan alone *)
  let dplan = Faults.plan [ Faults.drop_scale 16 ] in
  check_bool "dropped" true (Faults.drops_scale dplan ~nprocs:16);
  check_bool "others kept" true (not (Faults.drops_scale dplan ~nprocs:8))

let random_programs_terminate =
  qtest ~count:60 "random collective-safe programs terminate deterministically"
    safe_program_gen (fun prog ->
      (match Validate.run prog with Ok () -> () | Error _ -> ());
      let r1 = run ~nprocs:5 prog in
      let r2 = run ~nprocs:5 prog in
      r1.Exec.elapsed = r2.Exec.elapsed && r1.Exec.events = r2.Exec.events)

(* --- engine equivalence ---

   The compiled struct-of-arrays engine must be observably identical to
   the reference interpreter it replaced: same clocks, same PMU sums,
   same message counts, same kill/strand sets, to the last bit.  These
   digests were captured from the reference engine over the full
   application registry, clean and under a fault plan, at three scales;
   a changed digest means simulated behavior changed. *)

let equivalence_fault_plan =
  Faults.plan ~seed:7
    [
      Faults.kill_rank ~rank:1 ~after:1e-5 ();
      Faults.clock_skew ~rank:0 ~factor:1.7;
    ]

let reference_digests =
  [
    ("bt", 4, "9e5609946655375715b6281d702a6323", "0e03162b640a6d846c205801a2748405");
    ("bt", 16, "cc8e411225371251c18272b5b958a1e8", "b8692e2ad4c4e7ec53c75cc0ef3ae45e");
    ("bt", 64, "5d985beb8fd8d0df2d38bffe38a27e1e", "313fd500dd17a440bbac871f530f7838");
    ("cg", 4, "258dd3782cac585ff928ec51acea00a3", "ada52ac5527c397abfe5d9845ee4d755");
    ("cg", 16, "ad5efb2f8b8cea98fbe1987092aa63a0", "fbecfda029ea52adca1cbe4e4a4f3d69");
    ("cg", 64, "8a897d9b03040cac9473f2bccc4517d0", "485621f408b5f110bedc1730b8cac7d9");
    ("ep", 4, "95a7a59a3cce7a1d827601af8f83d682", "5606567496a434e86d1859e9d4e19144");
    ("ep", 16, "d59517df22fda4a02ebf05c9f219af68", "229b1558cb00d7ec7bc0a4f99b217e17");
    ("ep", 64, "b7734040d3bdcf2f98c493a184ede3c9", "c3188863575c2409af137970a9ea41bc");
    ("ft", 4, "ba323411bab0ccaf0d545e505299b526", "92999261769dfdb717686ce4dc316a96");
    ("ft", 16, "562efe7457e26a0cdf2f16d041011794", "c0ce820ea705ed6d465e6314fa5d5d32");
    ("ft", 64, "5596323b5867fb55fc2d20acf6b5b1e0", "fec8246fdfa9283a003e838b0dbabaca");
    ("mg", 4, "b01a6502b18a104e3e23f33ceba1255e", "68939202cfd4bb0c0821a0675d0314ea");
    ("mg", 16, "a381ef5bce7305b55d130cc246e188c1", "48fa98aa8182d71ab014e06878be68a3");
    ("mg", 64, "3c79019a02c14d91f87eaaf4e57a3666", "49f3878f7ed7f78ab02fa97d8ed718fa");
    ("sp", 4, "87abcb04b71035637fad676e1bff36b0", "0e03162b640a6d846c205801a2748405");
    ("sp", 16, "b4576fdea2fea861052f76f269e5de6a", "b8692e2ad4c4e7ec53c75cc0ef3ae45e");
    ("sp", 64, "92c7d943b11bdf205c44cf4d2d709b28", "313fd500dd17a440bbac871f530f7838");
    ("lu", 4, "d827c164e70095c1d0135c9bbb1d4f44", "fccebd09180ccf7c2f037910ef44a0d0");
    ("lu", 16, "8b1493e94a04318d0713fee25bd36c6b", "a86c52d7cbbd08581279438ecc021331");
    ("lu", 64, "d4ac9f5f611ffcdf8a2241d8eb2cb934", "7d636712c23326114874e238316eaa8e");
    ("is", 4, "ab24dfb4e984a02f5660195f610ac61c", "cc4b01847aeacc4d69f8fa684b07887a");
    ("is", 16, "5b220b25624d8ac8db39d901e5210c80", "70ea50a1770ddcddf197fcd8c950f138");
    ("is", 64, "9ed7a03715dcf436b2cbee882c653eda", "e8a4352464232737cfea531d6d9ccc55");
    ("sst", 4, "54cb4b029bfc982f82998eb30165e5e9", "0f22dedeb3dfe4c3095914260622006f");
    ("sst", 16, "8a42da52ffb267c125a0928b75c288f3", "8f6370535399bafdf99faa348886b694");
    ("sst", 64, "4440d3179a35a83e39da2c0d7d5aa2e3", "cc7683f5cc42eac2e4716d8a87a25d14");
    ("nekbone", 4, "879dd1e00e794e3c39e310a2b0fa1dbd", "b3fbbfa2f36000ecaa4aad0b8e08aee9");
    ("nekbone", 16, "b2432bc6e05b8b731661ac4ec34afd51", "6717f045a8b7ec27ffa31b0de173942e");
    ("nekbone", 64, "b9006b65290b085686a72124cb0111f0", "e62aac40e3c4904a216782012c1a549d");
    ("zeusmp", 4, "96578cf6f769266d7e6ae859102c0f04", "9b939b4b3ba458dcb509561d36739c0a");
    ("zeusmp", 16, "6b48e16fc247c3bbe2e7e6b5bb5e4768", "d28cfec99ecebc2542b66361d3027cdb");
    ("zeusmp", 64, "4965296d2984b55a6a0080680bdb9634", "f3242140afbaf3ee93df86063c345b6c");
  ]

let digest_result (r : Exec.result) =
  Digest.to_hex (Digest.string (Marshal.to_string r []))

let test_engine_reference_digests () =
  List.iter
    (fun (name, np, clean_d, faulted_d) ->
      let e = Scalana_apps.Registry.find name in
      let cfg = Exec.config ~nprocs:np ~cost:e.cost () in
      let clean = Exec.run ~cfg (e.make ()) in
      check_string
        (Printf.sprintf "%s np=%d clean" name np)
        clean_d (digest_result clean);
      let armed = Faults.arm equivalence_fault_plan ~nprocs:np ~attempt:1 in
      let fcfg = Exec.config ~nprocs:np ~cost:e.cost ~faults:armed () in
      let faulted = Exec.run ~cfg:fcfg (e.make ()) in
      check_string
        (Printf.sprintf "%s np=%d faulted" name np)
        faulted_d (digest_result faulted))
    reference_digests

(* --- elastic membership and recovery --- *)

let test_elastic_membership_shrink () =
  let plan =
    Elastic.plan ~total_iters:12 [ Elastic.shrink_at ~iter:6 ~rank:1 ]
  in
  let epochs, n_ranks = Elastic.membership plan ~nprocs:4 in
  check_int "distinct ranks" 4 n_ranks;
  check_bool "not static" false (Elastic.is_static plan ~nprocs:4);
  match epochs with
  | [ e0; e1 ] ->
      check_int "e0 lo" 0 e0.Elastic.e_lo;
      check_int "e0 hi" 6 e0.Elastic.e_hi;
      check_bool "e0 members" true (e0.Elastic.e_members = [| 0; 1; 2; 3 |]);
      check_bool "e0 unchanged" true
        (e0.Elastic.e_left = [] && e0.Elastic.e_joined = []);
      check_int "e1 lo" 6 e1.Elastic.e_lo;
      check_int "e1 hi" 12 e1.Elastic.e_hi;
      check_bool "e1 members" true (e1.Elastic.e_members = [| 0; 2; 3 |]);
      check_bool "e1 left" true (e1.Elastic.e_left = [ 1 ])
  | es -> Alcotest.failf "expected 2 epochs, got %d" (List.length es)

let test_elastic_membership_grow () =
  let plan =
    Elastic.plan ~total_iters:12 [ Elastic.grow_at ~iter:6 ~ranks:2 ]
  in
  let epochs, n_ranks = Elastic.membership plan ~nprocs:2 in
  (* joiners get the fresh global ids nprocs, nprocs+1, ... *)
  check_int "distinct ranks" 4 n_ranks;
  check_int "total_ranks" 4 (Elastic.total_ranks plan ~nprocs:2);
  match epochs with
  | [ _; e1 ] ->
      check_bool "e1 members" true (e1.Elastic.e_members = [| 0; 1; 2; 3 |]);
      check_bool "e1 joined" true (e1.Elastic.e_joined = [ 2; 3 ])
  | es -> Alcotest.failf "expected 2 epochs, got %d" (List.length es)

let test_elastic_membership_noop_events () =
  (* out-of-range boundaries and leaves of absent ranks fire nothing, so
     one plan stays valid (and here: static) at every scale *)
  let plan =
    Elastic.plan ~total_iters:10
      [
        Elastic.shrink_at ~iter:5 ~rank:9;
        Elastic.shrink_at ~iter:0 ~rank:0;
        Elastic.shrink_at ~iter:10 ~rank:0;
      ]
  in
  check_bool "static at np=4" true (Elastic.is_static plan ~nprocs:4);
  let epochs, n_ranks = Elastic.membership plan ~nprocs:4 in
  check_int "one epoch" 1 (List.length epochs);
  check_int "distinct ranks" 4 n_ranks;
  (* ...but the same plan does fire where the rank exists *)
  check_bool "fires at np=16" false (Elastic.is_static plan ~nprocs:16)

let test_elastic_recovery_semantics () =
  let plan =
    Elastic.plan ~total_iters:12 [ Elastic.shrink_at ~iter:6 ~rank:1 ]
  in
  let cost = Costmodel.default and net = Network.default in
  let members = [| 0; 2; 3 |] in
  let finish = [ (0, 1.0); (1, 1.1); (2, 1.2); (3, 0.9) ] in
  let r =
    Elastic.recover plan ~cost ~net ~nprocs:4 ~iter:6 ~left:[ 1 ] ~joined:[]
      ~members ~finish
  in
  (* detection jitter is bounded: within [timeout, 2*timeout] *)
  check_bool "detect window" true
    (r.Elastic.r_detect >= plan.Elastic.detect_timeout
    && r.Elastic.r_detect <= 2.0 *. plan.Elastic.detect_timeout);
  check_bool "agree positive" true (r.Elastic.r_agree > 0.0);
  check_bool "repartition positive" true (r.Elastic.r_repartition > 0.0);
  (* every survivor stalls until the common r_end *)
  check_int "three stalls" 3 (List.length r.Elastic.r_stalls);
  List.iter
    (fun (g, stall) ->
      close
        (Printf.sprintf "stall of rank %d" g)
        (r.Elastic.r_end -. List.assoc g finish)
        stall)
    r.Elastic.r_stalls;
  (* the departed rank never appears among the stalls *)
  check_bool "no stall for departed" true
    (not (List.mem_assoc 1 r.Elastic.r_stalls));
  (* grows have no detection window *)
  let g =
    Elastic.recover plan ~cost ~net ~nprocs:4 ~iter:6 ~left:[]
      ~joined:[ 4; 5 ]
      ~members:[| 0; 1; 2; 3; 4; 5 |]
      ~finish
  in
  check_float "grow detect" 0.0 g.Elastic.r_detect

let test_elastic_recovery_deterministic () =
  let plan =
    Elastic.plan ~total_iters:12 [ Elastic.shrink_at ~iter:6 ~rank:1 ]
  in
  let cost = Costmodel.default and net = Network.default in
  let run () =
    Elastic.recover plan ~cost ~net ~nprocs:8 ~iter:6 ~left:[ 1 ] ~joined:[]
      ~members:[| 0; 2; 3; 4; 5; 6; 7 |]
      ~finish:(List.init 8 (fun g -> (g, 1.0 +. (0.01 *. float_of_int g))))
  in
  check_bool "same plan, same recovery" true
    (Digest.string (Marshal.to_string (run ()) [])
    = Digest.string (Marshal.to_string (run ()) []))

let test_elastic_compress_ranks () =
  check_string "empty" "none" (Elastic.compress_ranks [||]);
  check_string "single" "3" (Elastic.compress_ranks [| 3 |]);
  check_string "ranges" "0-3,5,7-8"
    (Elastic.compress_ranks [| 0; 1; 2; 3; 5; 7; 8 |])

(* clock0 offsets the whole simulation: every event of an epoch run at
   clock0=c is the clock0=0 run shifted by exactly c *)
let test_exec_clock0_shifts () =
  let prog = ring_program ~niter:4 () in
  let at c =
    Exec.run ~cfg:(Exec.config ~nprocs:4 ~clock0:c ()) prog
  in
  let r0 = at 0.0 and r5 = at 5.0 in
  close "elapsed shifted" (r0.Exec.elapsed +. 5.0) r5.Exec.elapsed;
  (* per-rank derived totals (durations, not absolute clocks) match *)
  Array.iteri
    (fun i w -> close (Printf.sprintf "wait rank %d" i) w r5.Exec.wait_seconds.(i))
    r0.Exec.wait_seconds;
  Array.iteri
    (fun i w -> close (Printf.sprintf "comp rank %d" i) w r5.Exec.comp_seconds.(i))
    r0.Exec.comp_seconds

let () =
  Alcotest.run "runtime"
    [
      ( "heap",
        [
          heap_sorted;
          Alcotest.test_case "empty/one" `Quick test_heap_empty;
          heap_indexed_sorted;
          heap_indexed_matches_plain;
          heap_decrease_key;
          heap_replace_min;
          Alcotest.test_case "indexed errors" `Quick test_heap_indexed_errors;
        ] );
      ( "models",
        [
          Alcotest.test_case "pmu arithmetic" `Quick test_pmu_arith;
          Alcotest.test_case "cost model" `Quick test_costmodel;
          Alcotest.test_case "heterogeneous cores" `Quick
            test_heterogeneous_speed;
          Alcotest.test_case "network" `Quick test_network_model;
        ] );
      ( "matching",
        [
          Alcotest.test_case "blocking pair" `Quick test_blocking_pair;
          Alcotest.test_case "wildcard recv" `Quick test_wildcard_recv;
          Alcotest.test_case "tag selectivity" `Quick test_tag_selectivity;
          Alcotest.test_case "self send" `Quick test_self_send;
          Alcotest.test_case "nonblocking overlap" `Quick
            test_nonblocking_overlap;
          Alcotest.test_case "rendezvous blocks sender" `Quick
            test_rendezvous_blocks_sender;
          Alcotest.test_case "eager sender not blocked" `Quick
            test_eager_sender_not_blocked;
          Alcotest.test_case "sendrecv ring" `Quick test_sendrecv_ring_rotation;
        ] );
      ( "errors",
        [
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "collective mismatch" `Quick
            test_collective_mismatch;
          Alcotest.test_case "send out of range" `Quick test_send_out_of_range;
          Alcotest.test_case "wait unposted" `Quick test_wait_unposted_request;
          Alcotest.test_case "event budget" `Quick test_event_budget;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "collective synchronizes" `Quick
            test_collective_synchronizes;
          Alcotest.test_case "injection accounting" `Quick
            test_injection_accounting;
          Alcotest.test_case "injection every-n" `Quick test_injection_every;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "pmu accumulation" `Quick test_pmu_accumulation;
          Alcotest.test_case "recursion and icall" `Quick
            test_recursion_and_icall_run;
          Alcotest.test_case "2048 ranks smoke" `Quick test_large_scale_smoke;
          Alcotest.test_case "all collectives" `Quick test_all_collectives_run;
          Alcotest.test_case "collective payload cost" `Quick
            test_collective_cost_grows_with_bytes;
          random_programs_terminate;
        ] );
      ( "faults",
        [
          Alcotest.test_case "kill strands peers" `Quick
            test_fault_kill_strands_peers;
          Alcotest.test_case "late kill is noop" `Quick
            test_fault_kill_after_end_is_noop;
          Alcotest.test_case "clock skew" `Quick test_fault_clock_skew;
          Alcotest.test_case "determinism" `Quick test_fault_determinism;
          Alcotest.test_case "draws keyed on attempt" `Quick
            test_fault_draws_keyed_on_attempt;
          Alcotest.test_case "poison determinism" `Quick
            test_fault_poison_determinism;
        ] );
      ( "engine",
        [
          Alcotest.test_case "reference digests (full registry)" `Quick
            test_engine_reference_digests;
        ] );
      ( "elastic",
        [
          Alcotest.test_case "membership shrink" `Quick
            test_elastic_membership_shrink;
          Alcotest.test_case "membership grow" `Quick
            test_elastic_membership_grow;
          Alcotest.test_case "no-op events fire nothing" `Quick
            test_elastic_membership_noop_events;
          Alcotest.test_case "recovery semantics" `Quick
            test_elastic_recovery_semantics;
          Alcotest.test_case "recovery determinism" `Quick
            test_elastic_recovery_deterministic;
          Alcotest.test_case "compress ranks" `Quick
            test_elastic_compress_ranks;
          Alcotest.test_case "clock0 shifts the run" `Quick
            test_exec_clock0_shifts;
        ] );
    ]
