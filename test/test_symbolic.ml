(* Tests for the symbolic communication-complexity analysis: the
   polynomial domain, abstract expression evaluation, CFG block counts,
   exponent recovery from probes, the pattern classifier, and the
   acceptance pins on the registry — every app's known hotspot gets the
   expected scaling class (the NPB-CG transpose exchange is O(p)). *)

open Scalana_mlang
open Scalana_cfg
open Testutil

let sym = Alcotest.testable Symbolic.pp Symbolic.equal

let check_sym msg expected actual = Alcotest.check sym msg expected actual

(* --- domain operations --- *)

let test_domain_ops () =
  let open Symbolic in
  check_sym "1 + 1 = 2" (const 2.0) (add one one);
  check_sym "p * p" (mono ~coeff:1.0 ~p_exp:2.0 ~log_exp:0.0) (mul p p);
  check_sym "p * log p"
    (mono ~coeff:1.0 ~p_exp:1.0 ~log_exp:1.0)
    (mul p log_p);
  check_sym "p / p = 1" one (div p p);
  check_bool "top absorbs add" true (is_top (add top one));
  check_bool "top absorbs mul" true (is_top (mul top p));
  check_sym "join takes the larger coeff" (const 3.0)
    (join (const 2.0) (const 3.0));
  (* join is an upper bound across distinct monomials *)
  let j = join p log_p in
  check_bool "join keeps p" true (cls_equal (cls_of j) (cls_of p));
  check_sym "zero is the add identity" p (add zero p)

let test_classes () =
  let open Symbolic in
  check_bool "p is O(p)" true (String.equal (cls_label (cls_of p)) "O(p)");
  check_bool "log p" true
    (String.equal (cls_label (cls_of log_p)) "O(log p)");
  check_bool "const is O(1)" true
    (String.equal (cls_label (cls_of (const 42.0))) "O(1)");
  check_bool "top is unknown" true
    (String.equal (cls_label (cls_of top)) "O(?)");
  check_bool "p^2 sorts above p" true
    (cls_compare (cls_of (mul p p)) (cls_of p) > 0);
  check_bool "unknown sorts above p^2" true
    (cls_compare Unknown (cls_of (mul p p)) > 0)

(* --- abstract expression evaluation --- *)

let test_of_expr () =
  let open Expr.Infix in
  let env = Symbolic.env ~params:[ ("n", 1024) ] ~vars:[] in
  let ev e = Symbolic.of_expr env e in
  check_sym "np is p" Symbolic.p (ev np);
  check_bool "np*np is O(p^2)" true
    (Symbolic.cls_equal
       (Symbolic.cls_of (ev (np * np)))
       (Symbolic.cls_of (Symbolic.mul Symbolic.p Symbolic.p)));
  check_bool "log2 np" true
    (Symbolic.cls_equal
       (Symbolic.cls_of (ev (log2 np)))
       (Symbolic.cls_of Symbolic.log_p));
  check_sym "params fold to constants" (Symbolic.const 1024.0) (ev (p "n"));
  check_sym "n/np shrinks"
    (Symbolic.mono ~coeff:1024.0 ~p_exp:(-1.0) ~log_exp:0.0)
    (ev (p "n" / np));
  check_bool "rank is top" true (Symbolic.is_top (ev rank));
  check_bool "unbound var is top" true (Symbolic.is_top (ev (v "ghost")))

let test_block_counts () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"bc.mmp" ~name:"bc" () in
    Builder.func b "main" (fun () ->
        [
          Builder.loop b ~var:"r" ~count:np (fun () ->
              [ Builder.comp b ~flops:(i 1) ~mem:(i 1) () ]);
        ]);
    Builder.program b
  in
  let cfg = Cfg.of_func (Ast.find_func prog "main") in
  let env = Symbolic.env ~params:[] ~vars:[] in
  let counts = Symbolic.block_counts env cfg in
  check_bool "some block runs p times" true
    (Array.exists (fun c -> Symbolic.equal c Symbolic.p) counts);
  check_bool "entry runs once" true
    (Symbolic.equal counts.(cfg.Cfg.entry) Symbolic.one)

let test_fit_exponents () =
  let lbl samples =
    match Symbolic.fit_exponents samples with
    | Some c -> Symbolic.cls_label c
    | None -> "none"
  in
  check_bool "linear samples" true
    (String.equal (lbl [ (16, 16.0); (64, 64.0); (256, 256.0) ]) "O(p)");
  check_bool "log samples" true
    (String.equal (lbl [ (16, 4.0); (64, 6.0); (256, 8.0) ]) "O(log p)");
  check_bool "flat samples" true
    (String.equal (lbl [ (16, 3.0); (64, 3.0); (256, 3.0) ]) "O(1)");
  check_bool "sqrt samples" true
    (String.equal (lbl [ (16, 4.0); (64, 8.0); (256, 16.0) ]) "O(sqrt(p))");
  check_bool "one sample is not enough" true
    (Symbolic.fit_exponents [ (16, 4.0) ] = None)

(* --- the pattern classifier --- *)

let test_classify_pattern () =
  let ring np =
    List.init np (fun r -> ((r, (r + 1) mod np), 1))
  in
  check_bool "ring" true
    (String.equal (Commcost.classify_pattern ~np:16 (ring 16) []) "ring");
  let fan_in np = List.init (np - 1) (fun r -> ((r + 1, 0), 1)) in
  check_bool "root-centralized" true
    (String.equal
       (Commcost.classify_pattern ~np:16 (fan_in 16) [])
       "root-centralized");
  let all2all np =
    List.concat_map
      (fun s ->
        List.filter_map (fun d -> if s = d then None else Some ((s, d), 1))
          (List.init np Fun.id))
      (List.init np Fun.id)
  in
  check_bool "all-to-all" true
    (String.equal
       (Commcost.classify_pattern ~np:16 (all2all 16) [])
       "all-to-all");
  (* hypercube exchange: symmetric, long hops, not dense *)
  let hypercube np =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun k ->
            let d = r lxor (1 lsl k) in
            if d < np then Some ((r, d), 1) else None)
          [ 0; 1; 2; 3 ])
      (List.init np Fun.id)
  in
  check_bool "transpose" true
    (String.equal
       (Commcost.classify_pattern ~np:16 (hypercube 16) [])
       "transpose");
  check_bool "collective only" true
    (String.equal
       (Commcost.classify_pattern ~np:16 [] [ "MPI_Allreduce" ])
       "collective")

(* --- the full analysis on synthetic programs --- *)

let test_recursion_degrades () =
  let prog =
    let open Expr.Infix in
    let b = Builder.create ~file:"mr.mmp" ~name:"mr" () in
    Builder.func b "ping" (fun () ->
        [ Builder.allreduce b ~bytes:(i 8); Builder.call b "pong" ]);
    Builder.func b "pong" (fun () -> [ Builder.call b "ping" ]);
    Builder.func b "main" (fun () -> [ Builder.call b "ping" ]);
    Builder.program b
  in
  let cc = Commcost.analyze prog in
  check_bool "walks are not exact under recursion" false (Commcost.exact cc);
  (* the symbolic side widens the mutually recursive invocations to Top,
     so the classes degrade to unknown instead of lying *)
  List.iter
    (fun (f : Commcost.fact) ->
      check_bool "recursive fact is unknown" true
        (f.Commcost.cc_cls = Symbolic.Unknown))
    (Commcost.facts cc)

(* --- acceptance pins: known hotspot classes across the registry --- *)

let fact_class cc ~func ~op =
  List.find_map
    (fun (f : Commcost.fact) ->
      if String.equal f.Commcost.cc_func func && String.equal f.Commcost.cc_op op
      then Some (Symbolic.cls_label f.Commcost.cc_cls)
      else None)
    (Commcost.facts cc)

let pattern_of cc func = List.assoc_opt func (Commcost.patterns cc)

let analyze name =
  Commcost.analyze ((Scalana_apps.Registry.find name).Scalana_apps.Registry.make ())

let test_registry_hotspots () =
  (* cg: the hypercube transpose exchange — the paper's running example —
     must classify as O(p) network pressure with a transpose pattern *)
  let cg = analyze "cg" in
  check_bool "cg walks exact" true (Commcost.exact cg);
  Alcotest.(check (option string))
    "cg transpose is O(p)" (Some "O(p)")
    (fact_class cg ~func:"conj_grad" ~op:"MPI_Sendrecv");
  Alcotest.(check (option string))
    "cg pattern" (Some "transpose")
    (pattern_of cg "conj_grad");
  (* ft and is: alltoall volume — O(p) pressure *)
  Alcotest.(check (option string))
    "ft alltoall is O(p)" (Some "O(p)")
    (fact_class (analyze "ft") ~func:"transpose" ~op:"MPI_Alltoall");
  (* bt: square-grid halo — row exchanges dilate with the grid side *)
  let bt = analyze "bt" in
  Alcotest.(check (option string))
    "bt pattern" (Some "nearest-neighbor")
    (pattern_of bt "adi_step");
  (* mg: ring neighbours stay O(1) *)
  let mg = analyze "mg" in
  (match fact_class mg ~func:"residual" ~op:"MPI_Sendrecv" with
  | Some l -> check_bool "mg halo is O(1)" true (String.equal l "O(1)")
  | None -> Alcotest.fail "mg residual sendrecv fact missing");
  (* every registry app analyzes without dying, and allreduces are
     logarithmic wherever they appear *)
  List.iter
    (fun name ->
      let cc = analyze name in
      List.iter
        (fun (f : Commcost.fact) ->
          if String.equal f.Commcost.cc_op "MPI_Allreduce" && Commcost.exact cc
          then
            check_bool
              (name ^ " allreduce is O(log p)")
              true
              (String.equal (Symbolic.cls_label f.Commcost.cc_cls) "O(log p)"))
        (Commcost.facts cc))
    Scalana_apps.Registry.names

(* --- the static/dynamic cross-check on a real session --- *)

let test_crosscheck_cg () =
  let entry = Scalana_apps.Registry.find "cg" in
  let scales = Scalana_apps.Registry.scales entry ~min_np:4 ~max_np:16 in
  let config = { Scalana.Config.default with static_crosscheck = true } in
  let pipe =
    Scalana.Pipeline.run ~config
      ~cost:entry.Scalana_apps.Registry.cost ~scales
      (entry.Scalana_apps.Registry.make ())
  in
  match pipe.Scalana.Pipeline.analysis.Scalana_detect.Rootcause.crosscheck with
  | None -> Alcotest.fail "crosscheck requested but absent"
  | Some cx ->
      check_bool "at least one verdict" true
        (cx.Scalana_detect.Crosscheck.cx_verdicts <> []);
      check_bool "cg verdicts all confirmed" true
        (List.for_all
           (fun (v : Scalana_detect.Crosscheck.verdict) ->
             v.Scalana_detect.Crosscheck.cv_agrees = Some true)
           cx.Scalana_detect.Crosscheck.cx_verdicts);
      check_int "no mismatches" 0
        (List.length (Scalana_detect.Crosscheck.mismatches cx))

let () =
  Alcotest.run "symbolic"
    [
      ( "domain",
        [
          Alcotest.test_case "operations" `Quick test_domain_ops;
          Alcotest.test_case "classes" `Quick test_classes;
          Alcotest.test_case "of_expr" `Quick test_of_expr;
          Alcotest.test_case "block counts" `Quick test_block_counts;
          Alcotest.test_case "fit exponents" `Quick test_fit_exponents;
        ] );
      ( "patterns",
        [ Alcotest.test_case "classifier" `Quick test_classify_pattern ] );
      ( "commcost",
        [
          Alcotest.test_case "recursion degrades" `Quick
            test_recursion_degrades;
          Alcotest.test_case "registry hotspots" `Quick test_registry_hotspots;
        ] );
      ( "crosscheck",
        [ Alcotest.test_case "cg session confirms" `Quick test_crosscheck_cg ]
      );
    ]
