(* Wait-state attribution tests: exact classifications on hand-built
   event streams, a conservation property (attributed time never exceeds
   blocked time, per rank), and the end-to-end cg check — the transpose
   exchange's blocked time lands in the late-sender/late-receiver
   classes and the exported rank trace has one track per rank and a flow
   arrow per matched message. *)

module T = Scalana_profile.Timeline
module W = Scalana_detect.Waitstate
open Testutil

(* --- hand-built timelines --- *)

let mpi ?(deps = []) ?(sends = []) ?coll ~op ~wait () =
  T.Mpi { T.op; wait; deps; send_dests = sends; coll }

let iv ?vertex ~rank ~start ~stop kind =
  {
    T.iv_rank = rank;
    iv_vertex = vertex;
    iv_start = start;
    iv_stop = stop;
    iv_kind = kind;
    iv_merged = 1;
  }

(* Blocked totals are derived from the intervals, as the recorder would
   have accumulated them. *)
let timeline ~nprocs intervals =
  let blocked = Array.make nprocs 0.0 in
  List.iter
    (fun i ->
      match i.T.iv_kind with
      | T.Mpi m -> blocked.(i.T.iv_rank) <- blocked.(i.T.iv_rank) +. m.T.wait
      | T.Compute _ -> ())
    intervals;
  {
    T.nprocs;
    elapsed = List.fold_left (fun a i -> Float.max a i.T.iv_stop) 0.0 intervals;
    intervals = Array.of_list intervals;
    messages = [||];
    blocked;
    dropped = Array.make nprocs 0;
    merged = 0;
  }

let total cls (ws : W.t) = List.assoc cls ws.W.class_totals

let only_entry (ws : W.t) =
  match ws.W.entries with
  | [ e ] -> e
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es)

(* A receive blocked because its matched send was posted after the
   receive began: the whole wait is a late sender, blamed on the peer. *)
let test_late_sender () =
  let tl =
    timeline ~nprocs:2
      [
        iv ~vertex:7 ~rank:1 ~start:1.0 ~stop:2.0
          (mpi ~op:"MPI_Recv" ~wait:0.9 ~deps:[ (0, 1.5, 2.0) ] ());
      ]
  in
  let ws = W.analyze tl in
  check_float "late-sender gets the wait" 0.9 (total W.Late_sender ws);
  check_float "no late-receiver" 0.0 (total W.Late_receiver ws);
  check_float "no collective" 0.0 (total W.Collective_imbalance ws);
  let e = only_entry ws in
  check_bool "classified late-sender" true (e.W.ws_class = W.Late_sender);
  check_int "one op" 1 e.W.ws_ops;
  check_bool "peer blamed" true (e.W.ws_culprits = [ (0, 0.9) ]);
  check_bool "vertex kept" true (e.W.ws_vertex = Some 7);
  check_float "evidence at the vertex" 0.9
    (List.assoc W.Late_sender (W.vertex_evidence ws ~vertex:7));
  check_float "fully attributed" 1.0 (W.attributed_fraction ws)

(* The send was already posted when the receive began; the residual
   (transfer/drain) wait stays with the late-arriving receiver. *)
let test_late_receiver () =
  let tl =
    timeline ~nprocs:2
      [
        iv ~rank:1 ~start:2.0 ~stop:2.1
          (mpi ~op:"MPI_Recv" ~wait:0.1 ~deps:[ (0, 1.0, 2.1) ] ());
      ]
  in
  let ws = W.analyze tl in
  check_float "late-receiver gets the wait" 0.1 (total W.Late_receiver ws);
  check_float "no late-sender" 0.0 (total W.Late_sender ws);
  let e = only_entry ws in
  check_bool "self blamed" true (e.W.ws_culprits = [ (1, 0.1) ]);
  check_float "fully attributed" 1.0 (W.attributed_fraction ws)

(* A send-side block (no matched incoming message): the destinations
   were not draining — late receiver, blamed on them. *)
let test_send_side_block () =
  let tl =
    timeline ~nprocs:2
      [
        iv ~rank:0 ~start:1.0 ~stop:1.2
          (mpi ~op:"MPI_Send" ~wait:0.2 ~sends:[ 1 ] ());
      ]
  in
  let ws = W.analyze tl in
  check_float "late-receiver gets the wait" 0.2 (total W.Late_receiver ws);
  let e = only_entry ws in
  check_bool "destination blamed" true (e.W.ws_culprits = [ (1, 0.2) ])

(* A perfectly balanced collective: nobody waits, nothing to attribute,
   and the attributed fraction is (vacuously) complete. *)
let test_balanced_collective () =
  let coll r =
    iv ~rank:r ~start:1.0 ~stop:1.1
      (mpi ~op:"MPI_Allreduce" ~wait:0.0
         ~coll:
           { T.coll_arrive = 1.0; coll_start = 1.0; coll_last_rank = 3 }
         ())
  in
  let tl = timeline ~nprocs:4 [ coll 0; coll 1; coll 2; coll 3 ] in
  let ws = W.analyze tl in
  check_int "no entries" 0 (List.length ws.W.entries);
  List.iter
    (fun (_, t) -> check_float "class total zero" 0.0 t)
    ws.W.class_totals;
  check_float "vacuously attributed" 1.0 (W.attributed_fraction ws)

(* An imbalanced collective: early arrivers wait for the last rank,
   which takes the whole blame. *)
let test_imbalanced_collective () =
  let coll r ~arrive ~wait =
    iv ~vertex:3 ~rank:r ~start:arrive ~stop:3.1
      (mpi ~op:"MPI_Allreduce" ~wait
         ~coll:
           { T.coll_arrive = arrive; coll_start = 3.0; coll_last_rank = 3 }
         ())
  in
  let tl =
    timeline ~nprocs:4
      [
        coll 0 ~arrive:1.0 ~wait:2.0;
        coll 1 ~arrive:1.5 ~wait:1.5;
        coll 2 ~arrive:2.0 ~wait:1.0;
        coll 3 ~arrive:3.0 ~wait:0.0;
      ]
  in
  let ws = W.analyze tl in
  check_float "imbalance total" 4.5 (total W.Collective_imbalance ws);
  let e = only_entry ws in
  check_int "three blocked ops" 3 e.W.ws_ops;
  check_bool "last rank takes the blame" true (e.W.ws_culprits = [ (3, 4.5) ]);
  check_float "fully attributed" 1.0 (W.attributed_fraction ws)

(* Blocked time whose interval was truncated away must surface as
   unattributed, never silently vanish. *)
let test_truncation_unattributed () =
  let tl =
    timeline ~nprocs:2
      [
        iv ~rank:0 ~start:1.0 ~stop:2.0
          (mpi ~op:"MPI_Recv" ~wait:0.5 ~deps:[ (1, 1.8, 2.0) ] ());
      ]
  in
  (* simulate a recorder that dropped an interval carrying 0.25s wait *)
  let tl =
    { tl with T.blocked = [| 0.75; 0.0 |]; dropped = [| 1; 0 |] }
  in
  let ws = W.analyze tl in
  check_float "surviving wait attributed" 0.5 (total W.Late_sender ws);
  check_float "lost wait reported" 0.25 ws.W.unattributed;
  check_int "truncation surfaced" 1 ws.W.truncated;
  check_bool "fraction < 1" true (W.attributed_fraction ws < 1.0)

(* --- conservation property ---

   However the stream is shaped, per-rank attributed time never exceeds
   per-rank blocked time, and the class totals account for exactly the
   attributed sum. *)

let stream_arb =
  Prop.list_of ~max_len:24
    (Prop.pair (Prop.int_range 0 3)
       (Prop.pair
          (Prop.pair (Prop.float_range 0.0 10.0) (Prop.float_range 0.0 2.0))
          (Prop.pair (Prop.int_range 0 2) (Prop.float_range (-1.0) 1.0))))

let timeline_of_stream ops =
  let intervals =
    List.map
      (fun (rank, ((start, wait), (kind, peer_delta))) ->
        let stop = start +. wait +. 0.1 in
        let k =
          match kind with
          | 0 ->
              (* p2p with a matched send posted peer_delta around start *)
              mpi ~op:"MPI_Recv" ~wait
                ~deps:[ ((rank + 1) mod 4, start +. peer_delta, stop) ]
                ()
          | 1 -> mpi ~op:"MPI_Send" ~wait ~sends:[ (rank + 1) mod 4 ] ()
          | _ ->
              mpi ~op:"MPI_Allreduce" ~wait
                ~coll:
                  {
                    T.coll_arrive = start;
                    coll_start = start +. wait;
                    coll_last_rank = (rank + 2) mod 4;
                  }
                ()
        in
        iv ~vertex:(kind + 1) ~rank ~start ~stop k)
      ops
  in
  timeline ~nprocs:4 intervals

let prop_attributed_bounded ops =
  let ws = W.analyze (timeline_of_stream ops) in
  let ok = ref true in
  Array.iteri
    (fun r a -> if a > ws.W.rank_blocked.(r) +. 1e-9 then ok := false)
    ws.W.rank_attributed;
  let attributed = Array.fold_left ( +. ) 0.0 ws.W.rank_attributed in
  let classed =
    List.fold_left (fun acc (_, t) -> acc +. t) 0.0 ws.W.class_totals
  in
  !ok
  && Float.abs (attributed -. classed) < 1e-9
  && W.attributed_fraction ws <= 1.0 +. 1e-9

(* --- end to end on cg --- *)

let json_get k j =
  match Scalana_obs.Obs.Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "missing key %S" k

let json_str = function
  | Scalana_obs.Obs.Json.Str s -> s
  | _ -> Alcotest.fail "expected string"

let json_num = function
  | Scalana_obs.Obs.Json.Num n -> n
  | _ -> Alcotest.fail "expected number"

let test_cg_transpose () =
  let entry = Scalana_apps.Registry.find "cg" in
  let static = Scalana.Static.analyze (entry.make ()) in
  let tl = Scalana.Pipeline.rank_timeline ~cost:entry.cost static ~nprocs:16 in
  let ws = W.analyze tl in
  let blocked = Array.fold_left ( +. ) 0.0 ws.W.rank_blocked in
  check_bool "something blocked" true (blocked > 0.0);
  (* the transpose exchange dominates; >= 90% of all blocked time must
     land in the point-to-point classes (acceptance criterion) *)
  let p2p =
    total W.Late_sender ws +. total W.Late_receiver ws
  in
  check_bool "p2p classes cover >= 90% of blocked time" true
    (p2p >= 0.9 *. blocked);
  check_float "everything attributed" 1.0 (W.attributed_fraction ws);
  (* the dominant entry is the sendrecv transpose, a p2p class *)
  (match ws.W.entries with
  | e :: _ ->
      check_bool "dominant entry is p2p" true
        (e.W.ws_class = W.Late_sender || e.W.ws_class = W.Late_receiver)
  | [] -> Alcotest.fail "no wait-state entries");
  (* exported trace: one track per rank, one flow arrow per matched
     message, start on the sender's track, finish on the receiver's *)
  let doc = T.to_trace_json ~psg:(Scalana.Static.psg static) tl in
  let events =
    match json_get "traceEvents" doc with
    | Scalana_obs.Obs.Json.Arr l -> l
    | _ -> Alcotest.fail "traceEvents not an array"
  in
  let tracks =
    List.filter
      (fun e ->
        json_str (json_get "ph" e) = "M"
        && json_str (json_get "name" e) = "thread_name")
      events
  in
  check_int "one track per rank" tl.T.nprocs (List.length tracks);
  let flow ph =
    List.filter (fun e -> json_str (json_get "ph" e) = ph) events
  in
  let starts = flow "s" and finishes = flow "f" in
  check_int "one flow start per message"
    (Array.length tl.T.messages)
    (List.length starts);
  check_int "flow starts and finishes pair up" (List.length starts)
    (List.length finishes);
  check_bool "messages exist" true (Array.length tl.T.messages > 0);
  let has_start_on tid =
    List.exists (fun e -> int_of_float (json_num (json_get "tid" e)) = tid)
      starts
  and has_finish_on tid =
    List.exists (fun e -> int_of_float (json_num (json_get "tid" e)) = tid)
      finishes
  in
  Array.iter
    (fun (m : T.message) ->
      check_bool "flow start on sender track" true (has_start_on m.T.msg_src);
      check_bool "flow finish on receiver track" true
        (has_finish_on m.T.msg_dst))
    tl.T.messages

let () =
  Alcotest.run "waitstate"
    [
      ( "classes",
        [
          Alcotest.test_case "late sender" `Quick test_late_sender;
          Alcotest.test_case "late receiver" `Quick test_late_receiver;
          Alcotest.test_case "send-side block" `Quick test_send_side_block;
          Alcotest.test_case "balanced collective" `Quick
            test_balanced_collective;
          Alcotest.test_case "imbalanced collective" `Quick
            test_imbalanced_collective;
          Alcotest.test_case "truncation stays visible" `Quick
            test_truncation_unattributed;
        ] );
      ( "properties",
        [
          Prop.test ~count:200 "attributed <= blocked per rank" stream_arb
            prop_attributed_bounded;
        ] );
      ( "end-to-end", [ Alcotest.test_case "cg transpose" `Quick test_cg_transpose ] );
    ]
