(* Shared fixtures and helpers for the test suites. *)

open Scalana_mlang

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let close ?(eps = 1e-6) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* A small ring program: one compute block and a bidirectional shift per
   iteration, then an allreduce. *)
let ring_program ?(niter = 10) ?(work = 100_000) () =
  let open Expr.Infix in
  let b = Builder.create ~file:"ring.mmp" ~name:"ring" () in
  Builder.param b "w" work;
  Builder.param b "niter" niter;
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~label:"iter" ~var:"it" ~count:(p "niter") (fun () ->
            [
              Builder.comp b ~label:"work" ~flops:(p "w") ~mem:(p "w") ();
              Builder.sendrecv b
                ~dest:((rank + i 1) % np)
                ~sbytes:(i 4096)
                ~src:((rank - i 1 + np) % np)
                ~rbytes:(i 4096) ();
            ]);
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.program b

(* Functions, a branch, nested loops, an MPI pair — the Fig. 3 example. *)
let fig3_program () =
  let open Expr.Infix in
  let b = Builder.create ~file:"fig3.mmp" ~name:"fig3" () in
  Builder.param b "n" 1000;
  Builder.func b "foo" (fun () ->
      [
        Builder.branch b
          ~cond:(rank % i 2 = i 0)
          ~else_:(fun () ->
            [ Builder.recv b ~src:(rank - i 1) ~tag:(i 7) ~bytes:(i 64) () ])
          (fun () ->
            [ Builder.send b ~dest:(rank + i 1) ~tag:(i 7) ~bytes:(i 64) () ]);
      ]);
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~label:"loop1" ~var:"i" ~count:(p "n" / i 100) (fun () ->
            [
              Builder.comp b ~label:"a_init" ~flops:(p "n") ~mem:(p "n") ();
              Builder.loop b ~label:"loop1_1" ~var:"j" ~count:(i 4) (fun () ->
                  [ Builder.comp b ~label:"sum" ~flops:(p "n") ~mem:(p "n") () ]);
              Builder.loop b ~label:"loop1_2" ~var:"k" ~count:(i 4) (fun () ->
                  [ Builder.comp b ~label:"prod" ~flops:(p "n") ~mem:(p "n") () ]);
              Builder.call b "foo";
              Builder.bcast b ~bytes:(i 8) ();
            ]);
      ]);
  Builder.program b

(* Recursive and indirect calls for call-graph / PSG tests. *)
let recursion_program () =
  let open Expr.Infix in
  let b = Builder.create ~file:"rec.mmp" ~name:"rec" () in
  Builder.func b "alpha" (fun () ->
      [ Builder.comp b ~label:"alpha_work" ~flops:(i 1000) ~mem:(i 100) () ]);
  Builder.func b "beta" (fun () ->
      [ Builder.comp b ~label:"beta_work" ~flops:(i 2000) ~mem:(i 200) () ]);
  Builder.func b "walk" ~params:[ "d" ] (fun () ->
      [
        Builder.comp b ~label:"walk_work" ~flops:(i 500) ~mem:(i 50) ();
        Builder.branch b
          ~cond:(v "d" > i 0)
          (fun () -> [ Builder.call b "walk" ~args:[ ("d", v "d" - i 1) ] ]);
      ]);
  Builder.func b "main" (fun () ->
      [
        Builder.call b "walk" ~args:[ ("d", i 3) ];
        Builder.icall b ~selector:(rank % i 2) [ "alpha"; "beta" ];
        Builder.barrier b;
      ]);
  Builder.program b

let run ?(nprocs = 4) ?inject ?cost ?tools program =
  let cfg =
    Scalana_runtime.Exec.config ~nprocs ?inject ?cost ?tools ()
  in
  Scalana_runtime.Exec.run ~cfg program

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* A stdlib-only property-testing mini-harness: seeded generator
   combinators plus a greedy shrink-on-fail loop.  It exists alongside
   qcheck deliberately — properties over the pipeline's own types often
   want generators seeded the same splitmix64 way the fault plans are,
   and a failure here reports the *shrunk* counterexample through
   Alcotest like any other assertion. *)
module Prop = struct
  (* splitmix64: the same generator family Faults uses; one [int64]
     state, deterministic per seed. *)
  type rng = { mutable state : int64 }

  let rng seed = { state = Int64.of_int seed }

  let next r =
    let open Int64 in
    r.state <- add r.state 0x9E3779B97F4A7C15L;
    let z = r.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  (* Uniform-ish non-negative int below [bound]. *)
  let below r bound =
    if bound <= 1 then 0
    else
      Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1)
                      (Int64.of_int bound))

  (* A generator draws from the rng; an arbitrary also knows how to
     shrink a failing value and how to print it. *)
  type 'a gen = rng -> 'a

  type 'a arb = {
    gen : 'a gen;
    shrink : 'a -> 'a list;  (* strictly "smaller" candidates, best first *)
    show : 'a -> string;
  }

  let int_range lo hi =
    {
      gen = (fun r -> lo + below r (hi - lo + 1));
      shrink =
        (fun x ->
          (* toward the low bound: the classic halving ladder *)
          if x = lo then []
          else
            List.sort_uniq compare [ lo; lo + ((x - lo) / 2); x - 1 ]
            |> List.filter (fun y -> y <> x));
      show = string_of_int;
    }

  let float_range lo hi =
    {
      gen =
        (fun r ->
          lo
          +. (hi -. lo)
             *. (float_of_int (below r 1_000_000) /. 1_000_000.0));
      shrink = (fun _ -> []);  (* floats: report as drawn *)
      show = (fun x -> Printf.sprintf "%.9g" x);
    }

  let oneof values =
    {
      gen = (fun r -> values.(below r (Array.length values)));
      shrink = (fun _ -> []);
      show = (fun _ -> "<choice>");
    }

  let pair a b =
    {
      gen = (fun r -> (a.gen r, b.gen r));
      shrink =
        (fun (x, y) ->
          List.map (fun x' -> (x', y)) (a.shrink x)
          @ List.map (fun y' -> (x, y')) (b.shrink y));
      show = (fun (x, y) -> Printf.sprintf "(%s, %s)" (a.show x) (b.show y));
    }

  (* Lists shrink by dropping halves, then dropping single elements, then
     shrinking one element — enough to cut most counterexamples down to
     one or two entries. *)
  let list_of ?(max_len = 16) elt =
    let rec drop_halves l =
      let n = List.length l in
      if n <= 1 then []
      else
        [ List.filteri (fun i _ -> i < n / 2) l;
          List.filteri (fun i _ -> i >= n / 2) l ]
        @ drop_singles l
    and drop_singles l =
      List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) l) l
    in
    {
      gen =
        (fun r ->
          let n = below r (max_len + 1) in
          List.init n (fun _ -> elt.gen r));
      shrink =
        (fun l ->
          drop_halves l
          @ List.concat
              (List.mapi
                 (fun i x ->
                   List.map
                     (fun x' ->
                       List.mapi (fun j y -> if j = i then x' else y) l)
                     (elt.shrink x))
                 l));
      show =
        (fun l -> "[" ^ String.concat "; " (List.map elt.show l) ^ "]");
    }

  let map f ~show g =
    { gen = (fun r -> f (g.gen r)); shrink = (fun _ -> []); show }

  (* Run [prop] on [count] draws; on failure, shrink greedily until no
     smaller candidate still fails, then report the minimal one.  A
     property fails by returning [false] or raising. *)
  let check ?(count = 100) ?(seed = 0x5ca1a) name arb prop =
    let holds x = try prop x with _ -> false in
    let r = rng seed in
    for i = 1 to count do
      let x = arb.gen r in
      if not (holds x) then begin
        let rec minimize x steps =
          if steps > 1000 then x
          else
            match List.find_opt (fun y -> not (holds y)) (arb.shrink x) with
            | Some y -> minimize y (steps + 1)
            | None -> x
        in
        let m = minimize x 0 in
        Alcotest.failf
          "property %S falsified on draw %d/%d (seed %d)\n  shrunk: %s" name i
          count seed (arb.show m)
      end
    done

  (* Alcotest wrapper, mirroring [qtest]. *)
  let test ?count ?seed name arb prop =
    Alcotest.test_case name `Quick (fun () -> check ?count ?seed name arb prop)
end

(* Per-rank PMU of the (unique) comp vertex carrying [label], measured by
   a profiled run — the view the paper's Fig. 15/16 plots show. *)
let per_vertex_pmu ?cost ?(nprocs = 8) ~label prog =
  let locals = Scalana_psg.Intra.build_all prog in
  let full = Scalana_psg.Inter.build ~locals prog in
  let contraction = Scalana_psg.Contract.run full in
  let index = Scalana_psg.Index.build ~full ~contraction in
  let profiler = Scalana_profile.Profiler.create ~index ~nprocs () in
  let cfg =
    Scalana_runtime.Exec.config ~nprocs ?cost
      ~tools:[ Scalana_profile.Profiler.tool profiler ] ()
  in
  ignore (Scalana_runtime.Exec.run ~cfg prog);
  let data = Scalana_profile.Profiler.data profiler in
  let vertex =
    List.find
      (fun v ->
        match v.Scalana_psg.Vertex.kind with
        | Scalana_psg.Vertex.Comp { label = Some l; _ } -> String.equal l label
        | _ -> false)
      (Scalana_psg.Psg.find_all
         (fun v -> Scalana_psg.Vertex.is_comp v)
         contraction.Scalana_psg.Contract.psg)
  in
  Array.init nprocs (fun rank ->
      match
        Scalana_profile.Profdata.vector_opt data ~rank
          ~vertex:vertex.Scalana_psg.Vertex.id
      with
      | Some v -> v.Scalana_profile.Perfvec.pmu
      | None -> Scalana_runtime.Pmu.zero)
